//! The shared CLI used by every binary.
//!
//! `bin/suite.rs` runs any subset of [`crate::registry::Registry::builtin`]
//! in parallel; each per-figure binary (`fig3`, …) is a thin wrapper over
//! [`cli_single`]. Experiment lookup, selection, and the registry itself
//! live in [`crate::registry`] — this module only parses flags and wires
//! sinks, so new scenarios never touch it.

use crate::events::StderrSink;
use crate::json::Json;
use crate::registry::Registry;
use crate::runner::{run_parallel, RunOptions, RunOutcome};
use std::path::PathBuf;
use std::time::Duration;

/// Sample scale used by `--smoke` (clamped upward by each config's
/// per-experiment minimum sample counts).
pub const SMOKE_SCALE: f64 = 0.02;

/// Parse the scale implied by CLI args: `--smoke` → [`SMOKE_SCALE`],
/// `--quick` → 0.1, `--full` → 4.0, default 1.0.
pub fn scale_from(args: &[String]) -> f64 {
    if args.iter().any(|a| a == "--smoke") {
        SMOKE_SCALE
    } else if args.iter().any(|a| a == "--quick") {
        0.1
    } else if args.iter().any(|a| a == "--full") {
        4.0
    } else {
        1.0
    }
}

/// Parse `--<key> <value>` from `args`.
pub fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Entry point for the per-figure binaries: run one registry experiment
/// at the CLI-selected scale, print the human-readable report, and write
/// the JSON result under `results/` (or `--out <dir>`).
pub fn cli_single(name: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = Registry::builtin();
    let selected = registry.select(&[name]).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let opts = RunOptions {
        threads: 1,
        out_dir: Some(PathBuf::from(flag_value(&args, "out").unwrap_or("results"))),
        scale: scale_from(&args),
        seed: None,
    };
    let sink = StderrSink {
        print_reports: true,
    };
    let outcomes = run_parallel(&selected, &opts, &sink);
    if outcomes.iter().any(|o| o.result.is_err()) {
        std::process::exit(1);
    }
}

/// Serialize per-experiment wall-clock times to a JSON document —
/// written *alongside* the result files (never inside them: result JSON
/// must stay byte-identical across thread counts and hosts, which CI's
/// determinism check enforces).
pub fn timing_json(outcomes: &[RunOutcome], scale: f64, threads: usize, total: Duration) -> Json {
    Json::obj([
        ("schema_version", Json::from(1u32)),
        ("scale", Json::from(scale)),
        ("threads", Json::from(threads)),
        ("total_ms", Json::Num(total.as_secs_f64() * 1e3)),
        (
            "experiments",
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("name", Json::str(&o.name)),
                            ("wall_ms", Json::Num(o.wall.as_secs_f64() * 1e3)),
                            ("ok", Json::Bool(o.result.is_ok())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_flags() {
        let s = |v: &[&str]| scale_from(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert_eq!(s(&[]), 1.0);
        assert_eq!(s(&["--quick"]), 0.1);
        assert_eq!(s(&["--full"]), 4.0);
        assert_eq!(s(&["--smoke"]), SMOKE_SCALE);
    }

    #[test]
    fn timing_json_shape() {
        let outcomes = vec![
            RunOutcome {
                name: "fig3".to_string(),
                wall: Duration::from_millis(12),
                result: Ok(crate::report::Report::new("fig3", "t", 1, 1.0)),
                json_path: None,
            },
            RunOutcome {
                name: "fig9".to_string(),
                wall: Duration::from_millis(3),
                result: Err("boom".into()),
                json_path: None,
            },
        ];
        let doc = timing_json(&outcomes, 0.02, 4, Duration::from_millis(20));
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("schema_version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(back.get("threads").and_then(Json::as_f64), Some(4.0));
        let exps = back.get("experiments").and_then(Json::as_arr).unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("name").and_then(Json::as_str), Some("fig3"));
        assert_eq!(exps[1].get("ok"), Some(&Json::Bool(false)));
        assert!(exps[0].get("wall_ms").and_then(Json::as_f64).unwrap() >= 12.0);
    }

    #[test]
    fn flag_value_parses_pairs() {
        let args: Vec<String> = ["--threads", "4", "--out", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "threads"), Some("4"));
        assert_eq!(flag_value(&args, "out"), Some("x"));
        assert_eq!(flag_value(&args, "missing"), None);
    }
}
