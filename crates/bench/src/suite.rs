//! The experiment registry and the shared CLI used by every binary.
//!
//! [`registry`] names each paper artifact once; `bin/suite.rs` runs any
//! subset of it in parallel, and each per-figure binary (`fig3`, …) is a
//! thin wrapper over [`cli_single`].

use crate::experiments::{ablation, accuracy, fig10, fig3, fig7, fig8a, fig8b, fig9, table1};
use crate::json::Json;
use crate::runner::{run_parallel, Experiment, ExperimentConfig, RunOptions, RunOutcome};
use std::path::PathBuf;
use std::time::Duration;

/// Sample scale used by `--smoke` (clamped upward by each config's
/// per-experiment minimum sample counts).
pub const SMOKE_SCALE: f64 = 0.02;

/// Every experiment of the reproduction, at the given sample scale, in
/// presentation order.
pub fn registry(scale: f64) -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig3",
            title: "error of the approximate FP-IP vs IPU precision (§3.1)",
            config: ExperimentConfig::Fig3(fig3::Config::paper(scale)),
        },
        Experiment {
            name: "accuracy",
            title: "Top-1 accuracy vs IPU precision, synthetic substitute (§3.1)",
            config: ExperimentConfig::Accuracy(accuracy::Config::paper(scale)),
        },
        Experiment {
            name: "fig7",
            title: "tile area/power breakdown by component (§4.2)",
            config: ExperimentConfig::Fig7(fig7::Config::paper(scale)),
        },
        Experiment {
            name: "fig8a",
            title: "normalized execution time vs MC-IPU precision (§4.3)",
            config: ExperimentConfig::Fig8a(fig8a::Config::paper(scale)),
        },
        Experiment {
            name: "fig8b",
            title: "normalized execution time vs cluster size (§4.3)",
            config: ExperimentConfig::Fig8b(fig8b::Config::paper(scale)),
        },
        Experiment {
            name: "fig9",
            title: "exponent-difference (alignment) histograms (§4.3)",
            config: ExperimentConfig::Fig9(fig9::Config::paper(scale)),
        },
        Experiment {
            name: "fig10",
            title: "area/power efficiency design space (§4.4)",
            config: ExperimentConfig::Fig10(fig10::Config::paper(scale)),
        },
        Experiment {
            name: "table1",
            title: "multiplier-precision sensitivity (§4.5)",
            config: ExperimentConfig::Table1(table1::Config::paper(scale)),
        },
        Experiment {
            name: "ablation",
            title: "pre-shift / accumulator-grid / EHU-masking ablations",
            config: ExperimentConfig::Ablation(ablation::Config::paper(scale)),
        },
    ]
}

/// Parse the scale implied by CLI args: `--smoke` → [`SMOKE_SCALE`],
/// `--quick` → 0.1, `--full` → 4.0, default 1.0.
pub fn scale_from(args: &[String]) -> f64 {
    if args.iter().any(|a| a == "--smoke") {
        SMOKE_SCALE
    } else if args.iter().any(|a| a == "--quick") {
        0.1
    } else if args.iter().any(|a| a == "--full") {
        4.0
    } else {
        1.0
    }
}

/// Parse `--<key> <value>` from `args`.
pub fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Entry point for the per-figure binaries: run one registry experiment
/// at the CLI-selected scale, print the human-readable report, and write
/// the JSON result under `results/` (or `--out <dir>`).
pub fn cli_single(name: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from(&args);
    let out_dir = PathBuf::from(flag_value(&args, "out").unwrap_or("results"));
    let exp = registry(scale)
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("{name} is not in the experiment registry"));
    let opts = RunOptions {
        threads: 1,
        out_dir: Some(out_dir),
    };
    let outcomes = run_parallel(&[exp], &opts);
    report_outcomes(&outcomes, true);
    if outcomes.iter().any(|o| o.result.is_err()) {
        std::process::exit(1);
    }
}

/// Serialize per-experiment wall-clock times to a JSON document —
/// written *alongside* the result files (never inside them: result JSON
/// must stay byte-identical across thread counts and hosts, which CI's
/// determinism check enforces).
pub fn timing_json(outcomes: &[RunOutcome], scale: f64, threads: usize, total: Duration) -> Json {
    Json::obj([
        ("schema_version", Json::from(1u32)),
        ("scale", Json::from(scale)),
        ("threads", Json::from(threads)),
        ("total_ms", Json::Num(total.as_secs_f64() * 1e3)),
        (
            "experiments",
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("name", Json::str(o.name)),
                            ("wall_ms", Json::Num(o.wall.as_secs_f64() * 1e3)),
                            ("ok", Json::Bool(o.result.is_ok())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Print run outcomes; with `full`, print each successful report's text.
pub fn report_outcomes(outcomes: &[RunOutcome], full: bool) {
    for o in outcomes {
        match &o.result {
            Ok(report) => {
                if full {
                    print!("{}", report.render_text());
                }
                let dest = o
                    .json_path
                    .as_ref()
                    .map(|p| format!(" -> {}", p.display()))
                    .unwrap_or_default();
                eprintln!("[suite] {:<9} ok in {:>8.2?}{dest}", o.name, o.wall);
            }
            Err(msg) => {
                eprintln!("[suite] {:<9} FAILED: {msg}", o.name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let names: Vec<&str> = registry(1.0).iter().map(|e| e.name).collect();
        let expected = [
            "fig3", "accuracy", "fig7", "fig8a", "fig8b", "fig9", "fig10", "table1", "ablation",
        ];
        assert_eq!(names, expected);
    }

    #[test]
    fn scale_flags() {
        let s = |v: &[&str]| scale_from(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert_eq!(s(&[]), 1.0);
        assert_eq!(s(&["--quick"]), 0.1);
        assert_eq!(s(&["--full"]), 4.0);
        assert_eq!(s(&["--smoke"]), SMOKE_SCALE);
    }

    #[test]
    fn timing_json_shape() {
        let outcomes = vec![
            RunOutcome {
                name: "fig3",
                wall: Duration::from_millis(12),
                result: Ok(crate::report::Report::new("fig3", "t", 1, 1.0)),
                json_path: None,
            },
            RunOutcome {
                name: "fig9",
                wall: Duration::from_millis(3),
                result: Err("boom".into()),
                json_path: None,
            },
        ];
        let doc = timing_json(&outcomes, 0.02, 4, Duration::from_millis(20));
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("schema_version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(back.get("threads").and_then(Json::as_f64), Some(4.0));
        let exps = back.get("experiments").and_then(Json::as_arr).unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("name").and_then(Json::as_str), Some("fig3"));
        assert_eq!(exps[1].get("ok"), Some(&Json::Bool(false)));
        assert!(exps[0].get("wall_ms").and_then(Json::as_f64).unwrap() >= 12.0);
    }

    #[test]
    fn flag_value_parses_pairs() {
        let args: Vec<String> = ["--threads", "4", "--out", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "threads"), Some("4"));
        assert_eq!(flag_value(&args, "out"), Some("x"));
        assert_eq!(flag_value(&args, "missing"), None);
    }
}
