//! The shared CLI plumbing of the `suite` and `bench_gate` binaries.
//!
//! `bin/suite.rs` runs any subset of [`crate::registry::Registry::builtin`]
//! in parallel (`suite --only <name>` replaces the retired per-figure
//! binaries). Experiment lookup, selection, and the registry itself live
//! in [`crate::registry`] — this module only parses flags, so new
//! scenarios never touch it.

use crate::json::Json;
use crate::runner::RunOutcome;
use crate::suggest::unknown_name_error;
use mpipu_sim::Backend;
use std::time::Duration;

/// Sample scale used by `--smoke` (clamped upward by each config's
/// per-experiment minimum sample counts).
pub const SMOKE_SCALE: f64 = 0.02;

/// Parse the scale implied by CLI args: `--smoke` → [`SMOKE_SCALE`],
/// `--quick` → 0.1, `--full` → 4.0, default 1.0.
pub fn scale_from(args: &[String]) -> f64 {
    if args.iter().any(|a| a == "--smoke") {
        SMOKE_SCALE
    } else if args.iter().any(|a| a == "--quick") {
        0.1
    } else if args.iter().any(|a| a == "--full") {
        4.0
    } else {
        1.0
    }
}

/// Parse `--<key> <value>` from `args`.
pub fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parse `--backend <name>` (default: Monte-Carlo). Unknown names get
/// the same valid-list + nearest-match error UX as `--only`.
pub fn backend_from(args: &[String]) -> Result<Backend, String> {
    match flag_value(args, "backend") {
        None => Ok(Backend::MonteCarlo),
        Some(name) => {
            Backend::parse(name).ok_or_else(|| unknown_name_error("backend", name, &Backend::NAMES))
        }
    }
}

/// Serialize per-experiment wall-clock times to a JSON document —
/// written *alongside* the result files (never inside them: result JSON
/// must stay byte-identical across thread counts and hosts, which CI's
/// determinism check enforces).
pub fn timing_json(outcomes: &[RunOutcome], scale: f64, threads: usize, total: Duration) -> Json {
    Json::obj([
        ("schema_version", Json::from(1u32)),
        ("scale", Json::from(scale)),
        ("threads", Json::from(threads)),
        ("total_ms", Json::Num(total.as_secs_f64() * 1e3)),
        (
            "experiments",
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("name", Json::str(&o.name)),
                            ("wall_ms", Json::Num(o.wall.as_secs_f64() * 1e3)),
                            ("ok", Json::Bool(o.result.is_ok())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_flags() {
        let s = |v: &[&str]| scale_from(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert_eq!(s(&[]), 1.0);
        assert_eq!(s(&["--quick"]), 0.1);
        assert_eq!(s(&["--full"]), 4.0);
        assert_eq!(s(&["--smoke"]), SMOKE_SCALE);
    }

    #[test]
    fn timing_json_shape() {
        let outcomes = vec![
            RunOutcome {
                name: "fig3".to_string(),
                wall: Duration::from_millis(12),
                result: Ok(crate::report::Report::new("fig3", "t", 1, 1.0)),
                json_path: None,
            },
            RunOutcome {
                name: "fig9".to_string(),
                wall: Duration::from_millis(3),
                result: Err("boom".into()),
                json_path: None,
            },
        ];
        let doc = timing_json(&outcomes, 0.02, 4, Duration::from_millis(20));
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("schema_version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(back.get("threads").and_then(Json::as_f64), Some(4.0));
        let exps = back.get("experiments").and_then(Json::as_arr).unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("name").and_then(Json::as_str), Some("fig3"));
        assert_eq!(exps[1].get("ok"), Some(&Json::Bool(false)));
        assert!(exps[0].get("wall_ms").and_then(Json::as_f64).unwrap() >= 12.0);
    }

    #[test]
    fn backend_flag_parses_and_suggests() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(backend_from(&args(&[])), Ok(Backend::MonteCarlo));
        assert_eq!(
            backend_from(&args(&["--backend", "analytic"])),
            Ok(Backend::Analytic)
        );
        assert_eq!(
            backend_from(&args(&["--backend", "memoized-analytic"])),
            Ok(Backend::MemoizedAnalytic)
        );
        let err = backend_from(&args(&["--backend", "analitic"])).unwrap_err();
        assert!(err.contains("valid names: mc, analytic"), "{err}");
        assert!(err.contains("did you mean \"analytic\"?"), "{err}");
    }

    #[test]
    fn flag_value_parses_pairs() {
        let args: Vec<String> = ["--threads", "4", "--out", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "threads"), Some("4"));
        assert_eq!(flag_value(&args, "out"), Some("x"));
        assert_eq!(flag_value(&args, "missing"), None);
    }
}
