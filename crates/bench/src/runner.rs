//! The parallel experiment runner.
//!
//! [`Experiment`] pairs a registry name with a typed configuration
//! ([`ExperimentConfig`]); [`run_parallel`] executes a set of experiments
//! across a fixed-size pool of worker threads (scoped `std::thread` —
//! the build environment has no registry access, so no `rayon`; the work
//! shape is nine coarse tasks, for which a work-stealing pool would be
//! overkill anyway) and writes one JSON document per experiment.
//!
//! Determinism: every experiment carries its own seed inside its config,
//! fixed at registry-construction time, so results are identical no
//! matter how many threads run the suite or in which order the pool picks
//! tasks up. Worker threads never share RNG state.

use crate::experiments::{ablation, accuracy, fig10, fig3, fig7, fig8a, fig8b, fig9, table1};
use crate::report::Report;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Typed configuration for every experiment in the registry. Each variant
/// owns the full parameter set of one paper artifact; adding a scenario
/// means adding a variant (or a new constructor on an existing config).
#[derive(Debug, Clone)]
pub enum ExperimentConfig {
    /// §3.1 error-vs-precision sweeps (Fig 3).
    Fig3(fig3::Config),
    /// §3.1 Top-1 accuracy vs IPU precision.
    Accuracy(accuracy::Config),
    /// §4.2 tile area/power breakdowns (Fig 7).
    Fig7(fig7::Config),
    /// §4.3 exec time vs adder-tree precision (Fig 8a).
    Fig8a(fig8a::Config),
    /// §4.3 exec time vs cluster size (Fig 8b).
    Fig8b(fig8b::Config),
    /// §4.3 exponent-difference histograms (Fig 9).
    Fig9(fig9::Config),
    /// §4.4 efficiency design space (Fig 10).
    Fig10(fig10::Config),
    /// §4.5 multiplier-precision sensitivity (Table 1).
    Table1(table1::Config),
    /// Ablations of design choices the paper motivates but does not plot.
    Ablation(ablation::Config),
}

impl ExperimentConfig {
    /// Execute the experiment.
    pub fn run(&self) -> Report {
        match self {
            ExperimentConfig::Fig3(c) => fig3::run(c),
            ExperimentConfig::Accuracy(c) => accuracy::run(c),
            ExperimentConfig::Fig7(c) => fig7::run(c),
            ExperimentConfig::Fig8a(c) => fig8a::run(c),
            ExperimentConfig::Fig8b(c) => fig8b::run(c),
            ExperimentConfig::Fig9(c) => fig9::run(c),
            ExperimentConfig::Fig10(c) => fig10::run(c),
            ExperimentConfig::Table1(c) => table1::run(c),
            ExperimentConfig::Ablation(c) => ablation::run(c),
        }
    }
}

/// A named, configured experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Registry name (`fig3`, `fig8a`, …) — also the JSON file stem.
    pub name: &'static str,
    /// One-line description shown by `suite --list`.
    pub title: &'static str,
    /// The typed configuration the run executes.
    pub config: ExperimentConfig,
}

/// Options for [`run_parallel`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (0 ⇒ one per available CPU, capped at the number
    /// of experiments).
    pub threads: usize,
    /// Directory for JSON results; `None` skips writing.
    pub out_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: 0,
            out_dir: Some(PathBuf::from("results")),
        }
    }
}

/// What happened to one experiment.
#[derive(Debug)]
pub struct RunOutcome {
    /// Registry name.
    pub name: &'static str,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// The report, or the panic message if the experiment died.
    pub result: Result<Report, String>,
    /// Where the JSON landed, when requested and successful.
    pub json_path: Option<PathBuf>,
}

/// Run `experiments` across a worker pool; returns outcomes in registry
/// order regardless of scheduling.
pub fn run_parallel(experiments: &[Experiment], opts: &RunOptions) -> Vec<RunOutcome> {
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create results dir {}: {e}", dir.display()));
    }
    let threads = effective_threads(opts.threads, experiments.len());
    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Option<RunOutcome>>> =
        Mutex::new((0..experiments.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = experiments.get(i) else { break };
                let outcome = run_one(exp, opts.out_dir.as_deref());
                outcomes.lock().unwrap()[i] = Some(outcome);
            });
        }
    });

    outcomes
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("worker pool completed every slot"))
        .collect()
}

fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, work_items.max(1))
}

fn run_one(exp: &Experiment, out_dir: Option<&Path>) -> RunOutcome {
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| exp.config.run()))
        .map_err(|payload| panic_message(&payload));
    let wall = t0.elapsed();
    let json_path = match (&result, out_dir) {
        (Ok(report), Some(dir)) => {
            let path = dir.join(format!("{}.json", exp.name));
            std::fs::write(&path, report.to_json().to_string_pretty())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            Some(path)
        }
        _ => None,
    };
    RunOutcome {
        name: exp.name,
        wall,
        result,
        json_path,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "experiment panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_clamps_to_work() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 9), 2);
        assert!(effective_threads(0, 9) >= 1);
        assert_eq!(effective_threads(4, 0), 1);
    }
}
