//! The open experiment abstraction and the parallel runner.
//!
//! [`Experiment`] is an object-safe trait: anything that can name itself
//! and produce a [`Report`] from a [`RunCtx`] is an experiment. The
//! builtin paper artifacts implement it in `experiments/*`; downstream
//! scenarios implement it in their own files and register through
//! [`crate::registry::Registry::register`] — no edits here or in
//! `suite.rs` required.
//!
//! [`run_parallel`] executes a set of experiments across a fixed-size
//! pool of worker threads (scoped `std::thread` — the build environment
//! has no registry access, so no `rayon`; the work shape is a handful of
//! coarse tasks, for which a work-stealing pool would be overkill anyway)
//! and streams lifecycle [`Event`]s to a [`Sink`] as they happen.
//!
//! Determinism: every builtin experiment derives its configuration (and
//! seed) from `RunCtx` the same way on every run, so results are
//! identical no matter how many threads run the suite or in which order
//! the pool picks tasks up. Worker threads never share RNG state.

use crate::events::{Event, Sink};
use crate::report::Report;
use mpipu_sim::{Backend, CostBackend};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// An experiment: a named, self-describing unit of work producing a
/// structured [`Report`]. Object-safe — the registry stores
/// `Box<dyn Experiment>`.
pub trait Experiment: Send + Sync {
    /// Registry name (`fig3`, `hybrid`, …) — also the JSON file stem.
    fn name(&self) -> &str;

    /// One-line description shown by `suite --list`.
    fn title(&self) -> &str;

    /// Execute at the context's scale/seed, streaming progress through
    /// the context's sink.
    fn run(&self, ctx: &RunCtx<'_>) -> Report;
}

/// Everything an experiment needs from its environment: sample scale,
/// optional seed override, the worker-thread budget, the cost-estimation
/// backend, and the event sink.
pub struct RunCtx<'a> {
    /// Sample-count scale (1.0 = paper scale).
    pub scale: f64,
    /// Optional seed override. `None` runs each experiment's canonical
    /// (paper) seed; `Some(s)` derives a distinct per-experiment seed
    /// from `s` — see [`RunCtx::seed_for`].
    pub seed: Option<u64>,
    /// Size of the worker pool this run executes on — informational:
    /// up to this many experiments run *concurrently*, so an experiment
    /// wanting internal parallelism must assume its siblings share the
    /// budget (spawning `threads` threads of its own would oversubscribe
    /// the host `threads`-fold).
    pub threads: usize,
    /// The cost-estimation backend the performance experiments route
    /// their `Scenario`s through (`.cost_backend(ctx.backend.clone())`).
    /// One instance is shared by every experiment of a run, so a
    /// memoized backend pools its cache across the whole suite.
    pub backend: Arc<dyn CostBackend>,
    /// Whether the run's backend was chosen *explicitly* (the suite's
    /// `--backend` flag) rather than defaulted. Experiments that pick
    /// their own backend for tractability (`frontier` sweeps its 10⁴⁺
    /// grid through the batched analytic backend) honor an explicit
    /// choice and ignore the default.
    pub backend_explicit: bool,
    /// Event sink for progress reporting.
    pub sink: &'a dyn Sink,
}

impl<'a> RunCtx<'a> {
    /// A context at the given scale with no seed override and the
    /// default Monte-Carlo backend.
    pub fn new(scale: f64, sink: &'a dyn Sink) -> Self {
        RunCtx {
            scale,
            seed: None,
            threads: 1,
            backend: Backend::MonteCarlo.instantiate(),
            backend_explicit: false,
            sink,
        }
    }

    /// The seed an experiment should run with: its canonical `default`
    /// when no override is set, otherwise a per-experiment stream derived
    /// by mixing the override with the experiment name (so overridden
    /// suites still give every experiment an independent seed).
    pub fn seed_for(&self, name: &str, default: u64) -> u64 {
        match self.seed {
            None => default,
            Some(s) => s ^ fnv1a(name.as_bytes()),
        }
    }

    /// Publish a progress event.
    pub fn progress(&self, name: &str, message: &str) {
        self.sink.event(&Event::Progress { name, message });
    }

    /// Publish a sweep-engine event under this experiment's name — the
    /// bridge from an experiment's internal [`mpipu_explore::SweepEngine`]
    /// run into the suite's event stream, in the shared wire form
    /// ([`crate::sweep_wire`]).
    pub fn sweep_event(&self, name: &str, event: &mpipu_explore::SweepEvent<'_>) {
        self.sink.event(&Event::Sweep { name, sweep: event });
    }
}

/// FNV-1a — a stable, dependency-free string hash for seed derivation
/// (must never change: overridden-seed results are reproducible too).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Options for [`run_parallel`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (0 ⇒ one per available CPU, capped at the number
    /// of experiments).
    pub threads: usize,
    /// Directory for JSON results; `None` skips writing.
    pub out_dir: Option<PathBuf>,
    /// Sample-count scale handed to every experiment.
    pub scale: f64,
    /// Optional seed override handed to every experiment.
    pub seed: Option<u64>,
    /// Cost-estimation backend, instantiated once and shared by every
    /// experiment of the run.
    pub backend: Backend,
    /// Whether `backend` was chosen explicitly (CLI `--backend`) rather
    /// than defaulted — forwarded to [`RunCtx::backend_explicit`].
    pub backend_explicit: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: 0,
            out_dir: Some(PathBuf::from("results")),
            scale: 1.0,
            seed: None,
            backend: Backend::MonteCarlo,
            backend_explicit: false,
        }
    }
}

/// What happened to one experiment.
#[derive(Debug)]
pub struct RunOutcome {
    /// Registry name.
    pub name: String,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// The report, or the panic message if the experiment died.
    pub result: Result<Report, String>,
    /// Where the JSON landed, when requested and successful.
    pub json_path: Option<PathBuf>,
}

/// Run `experiments` across a worker pool, streaming events to `sink`;
/// returns outcomes in input order regardless of scheduling.
pub fn run_parallel(
    experiments: &[&dyn Experiment],
    opts: &RunOptions,
    sink: &dyn Sink,
) -> Vec<RunOutcome> {
    // One backend instance for the whole run: memoized backends pool
    // their cache across experiments and worker threads.
    run_on_backend(experiments, opts, &opts.backend.instantiate(), sink)
}

/// [`run_parallel`] on a caller-instantiated backend — the form for
/// callers that want to inspect the backend afterwards (the suite binary
/// reads its [`mpipu_sim::CacheStats`] for `--text` output). Ignores
/// `opts.backend`.
pub fn run_on_backend(
    experiments: &[&dyn Experiment],
    opts: &RunOptions,
    backend: &Arc<dyn CostBackend>,
    sink: &dyn Sink,
) -> Vec<RunOutcome> {
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create results dir {}: {e}", dir.display()));
    }
    let total = experiments.len();
    let threads = effective_threads(opts.threads, total);
    let t0 = Instant::now();
    sink.event(&Event::SuiteStarted {
        total,
        threads,
        scale: opts.scale,
    });

    let next = AtomicUsize::new(0);
    let outcomes: Mutex<Vec<Option<RunOutcome>>> = Mutex::new((0..total).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = experiments.get(i).copied() else {
                    break;
                };
                let outcome = run_one(exp, i, total, threads, opts, backend, sink);
                outcomes.lock().unwrap()[i] = Some(outcome);
            });
        }
    });

    let outcomes: Vec<RunOutcome> = outcomes
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("worker pool completed every slot"))
        .collect();
    // Surface the shared backend's cache effectiveness once, after every
    // experiment has stopped querying it.
    if let Some(stats) = backend.cache_stats() {
        sink.event(&Event::BackendStats {
            backend: backend.name(),
            inner: stats.inner,
            hits: stats.hits,
            misses: stats.misses,
            entries: stats.entries,
        });
    }
    let failed = outcomes.iter().filter(|o| o.result.is_err()).count();
    sink.event(&Event::SuiteFinished {
        ok: outcomes.len() - failed,
        failed,
        wall: t0.elapsed(),
    });
    outcomes
}

fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, work_items.max(1))
}

fn run_one(
    exp: &dyn Experiment,
    index: usize,
    total: usize,
    threads: usize,
    opts: &RunOptions,
    backend: &Arc<dyn CostBackend>,
    sink: &dyn Sink,
) -> RunOutcome {
    let name = exp.name().to_string();
    sink.event(&Event::ExperimentStarted {
        name: &name,
        index,
        total,
    });
    let ctx = RunCtx {
        scale: opts.scale,
        seed: opts.seed,
        threads,
        backend: backend.clone(),
        backend_explicit: opts.backend_explicit,
        sink,
    };
    let t0 = Instant::now();
    // `payload.as_ref()`, not `&payload`: a `&Box<dyn Any>` would itself
    // coerce to `&dyn Any` wrapping the box, and every downcast would
    // miss (losing the panic message).
    let result = catch_unwind(AssertUnwindSafe(|| exp.run(&ctx)))
        .map_err(|payload| panic_message(payload.as_ref()));
    let wall = t0.elapsed();
    let json_path = match (&result, opts.out_dir.as_deref()) {
        (Ok(report), Some(dir)) => {
            let path = dir.join(format!("{name}.json"));
            std::fs::write(&path, report.to_json().to_string_pretty())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            Some(path)
        }
        _ => None,
    };
    sink.event(&Event::ExperimentFinished {
        name: &name,
        index,
        total,
        wall,
        report: result.as_ref().ok(),
        error: result.as_ref().err().map(String::as_str),
        json_path: json_path.as_deref().map(Path::new),
    });
    RunOutcome {
        name,
        wall,
        result,
        json_path,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "experiment panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CollectSink, NullSink};

    struct Probe {
        name: &'static str,
        fail: bool,
    }

    impl Experiment for Probe {
        fn name(&self) -> &str {
            self.name
        }
        fn title(&self) -> &str {
            "probe"
        }
        fn run(&self, ctx: &RunCtx<'_>) -> Report {
            ctx.progress(self.name, "working");
            if self.fail {
                panic!("probe {} exploded", self.name);
            }
            Report::new(self.name, "probe", ctx.seed_for(self.name, 7), ctx.scale)
        }
    }

    #[test]
    fn thread_count_clamps_to_work() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 9), 2);
        assert!(effective_threads(0, 9) >= 1);
        assert_eq!(effective_threads(4, 0), 1);
    }

    #[test]
    fn runner_streams_events_and_orders_outcomes() {
        let a = Probe {
            name: "alpha",
            fail: false,
        };
        let b = Probe {
            name: "beta",
            fail: true,
        };
        let sink = CollectSink::new();
        let opts = RunOptions {
            threads: 2,
            out_dir: None,
            scale: 0.5,
            ..RunOptions::default()
        };
        let outcomes = run_parallel(&[&a, &b], &opts, &sink);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].name, "alpha");
        assert!(outcomes[0].result.is_ok());
        assert_eq!(outcomes[1].name, "beta");
        let err = outcomes[1].result.as_ref().unwrap_err();
        assert!(err.contains("beta exploded"), "{err}");

        let events = sink.take();
        assert_eq!(events.first().unwrap().kind, "suite_started");
        assert_eq!(events.last().unwrap().kind, "suite_finished");
        assert_eq!(events.last().unwrap().ok, Some(false));
        let finished_ok: Vec<_> = events
            .iter()
            .filter(|e| e.kind == "experiment_finished")
            .collect();
        assert_eq!(finished_ok.len(), 2);
        assert_eq!(
            events.iter().filter(|e| e.kind == "progress").count(),
            2,
            "both probes emit progress"
        );
    }

    #[test]
    fn memoizing_runs_emit_backend_stats_before_suite_finished() {
        let probe = Probe {
            name: "delta",
            fail: false,
        };
        let sink = CollectSink::new();
        let opts = RunOptions {
            threads: 1,
            out_dir: None,
            backend: Backend::MemoizedAnalytic,
            ..RunOptions::default()
        };
        run_parallel(&[&probe], &opts, &sink);
        let events = sink.take();
        let stats_at = events
            .iter()
            .position(|e| e.kind == "backend_stats")
            .expect("memoized backend reports stats");
        assert_eq!(events[stats_at].name.as_deref(), Some("memoized"));
        assert_eq!(
            events.last().unwrap().kind,
            "suite_finished",
            "stats precede the suite summary"
        );

        // Plain backends stay silent.
        let sink = CollectSink::new();
        run_parallel(
            &[&probe],
            &RunOptions {
                threads: 1,
                out_dir: None,
                ..RunOptions::default()
            },
            &sink,
        );
        assert!(sink.take().iter().all(|e| e.kind != "backend_stats"));
    }

    #[test]
    fn seed_override_derives_distinct_per_experiment_streams() {
        let ctx = RunCtx::new(1.0, &NullSink);
        assert_eq!(ctx.seed_for("fig3", 0x5eed), 0x5eed);
        let overridden = RunCtx {
            seed: Some(99),
            ..RunCtx::new(1.0, &NullSink)
        };
        let a = overridden.seed_for("fig3", 0x5eed);
        let b = overridden.seed_for("fig9", 9);
        assert_ne!(a, 0x5eed, "override must replace the default");
        assert_ne!(a, b, "distinct experiments get distinct streams");
        // Stable derivation: same inputs, same seed, forever.
        assert_eq!(a, overridden.seed_for("fig3", 123));
    }

    #[test]
    fn run_ctx_scale_reaches_reports() {
        let probe = Probe {
            name: "gamma",
            fail: false,
        };
        let opts = RunOptions {
            threads: 1,
            out_dir: None,
            scale: 0.25,
            seed: Some(5),
            ..RunOptions::default()
        };
        let outcomes = run_parallel(&[&probe], &opts, &NullSink);
        let report = outcomes[0].result.as_ref().unwrap();
        assert_eq!(report.scale, 0.25);
        assert_ne!(report.seed, 7, "seed override must be applied");
    }
}
