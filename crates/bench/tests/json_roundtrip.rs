//! Property test: `Json::parse(emit(x)) == x` for arbitrary documents.
//!
//! The parser landed in PR 2 with directed tests only; this drives the
//! writer/parser pair with generated trees. The generator only produces
//! values the writer represents canonically, mirroring the writer's
//! normalization rules:
//!
//! * non-negative integral numbers are generated as [`Json::UInt`]
//!   (the writer prints `Num(3.0)` as `3`, which reads back as `UInt`);
//! * floats are finite (non-finite serialize as `null` by design).

use mpipu_bench::json::Json;
use proptest::prelude::*;

/// splitmix64 — a small deterministic stream for structural choices.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A float the writer round-trips exactly: finite, spanning the full
/// binary64 magnitude range (~1e-90..1e90 either sign, plus subnormal
/// territory via underflow), and never a small non-negative integral
/// value (those canonicalize to `UInt` by design).
fn arbitrary_num(state: &mut u64) -> Json {
    let raw = next(state);
    let mantissa = (raw >> 11) as f64 / (1u64 << 53) as f64 - 0.5; // [-0.5, 0.5)
    let exp = ((next(state) % 601) as i32) - 300; // 2^-300 ..= 2^300
    let mut x = mantissa * (exp as f64).exp2();
    if x >= 0.0 && x == x.trunc() && x <= u64::MAX as f64 {
        // The writer prints these as bare decimal integers (Rust's f64
        // Display never uses scientific notation), which parse back as
        // `UInt` — make the value unambiguously a float by sign instead
        // of nudging (adding 0.5 can round away above 2^52).
        x = -x - 0.5;
    }
    Json::Num(x)
}

fn arbitrary_string(state: &mut u64) -> String {
    let len = (next(state) % 12) as usize;
    (0..len)
        .map(|_| {
            // Cover escapes, ASCII, and multibyte UTF-8.
            const ALPHABET: [char; 16] = [
                'a', 'b', 'Z', '9', ' ', '"', '\\', '\n', '\t', '\r', '\u{1}', '/', 'é', 'µ', '李',
                '🦀',
            ];
            ALPHABET[(next(state) % ALPHABET.len() as u64) as usize]
        })
        .collect()
}

fn arbitrary_json(state: &mut u64, depth: u32) -> Json {
    let choices = if depth == 0 { 5 } else { 7 };
    match next(state) % choices {
        0 => Json::Null,
        1 => Json::Bool(next(state).is_multiple_of(2)),
        2 => Json::UInt(next(state)),
        3 => arbitrary_num(state),
        4 => Json::Str(arbitrary_string(state)),
        5 => {
            let n = (next(state) % 4) as usize;
            Json::Arr((0..n).map(|_| arbitrary_json(state, depth - 1)).collect())
        }
        _ => {
            let n = (next(state) % 4) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| {
                        // Keys may repeat content-wise; suffix with the
                        // index so lookup semantics stay unambiguous.
                        let key = format!("{}{i}", arbitrary_string(state));
                        (key, arbitrary_json(state, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pretty_form_round_trips(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let doc = arbitrary_json(&mut state, 3);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&doc), "document {}", text);
    }

    #[test]
    fn compact_form_round_trips(seed in 0u64..u64::MAX) {
        let mut state = seed ^ 0xDEAD_BEEF;
        let doc = arbitrary_json(&mut state, 3);
        let text = doc.to_string_compact();
        prop_assert!(!text.contains('\n'));
        let back = Json::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&doc), "document {}", text);
    }

    #[test]
    fn uints_survive_beyond_f64_precision(seed in 0u64..u64::MAX) {
        // Dedicated coverage for the exact-integer path: every u64 —
        // including those above 2^53 — must survive a round trip bit-for-bit.
        let doc = Json::obj([("seed", Json::from(seed))]);
        let back = Json::parse(&doc.to_string_pretty()).unwrap();
        prop_assert_eq!(back.get("seed"), Some(&Json::UInt(seed)));
    }
}
