//! Golden test pinning the builtin registry's names and order.
//!
//! Result-file stems, CI's existence checks, and downstream tooling all
//! key on these names; reordering changes `--list` output and the
//! presentation order of every suite run. Changing this list is fine —
//! but it must be a deliberate act, so the full expected sequence lives
//! here verbatim.

use mpipu_bench::registry::Registry;
use mpipu_bench::runner::{RunCtx, RunOptions};

#[test]
fn builtin_names_and_order_are_pinned() {
    let expected = [
        "fig3", "accuracy", "fig7", "fig8a", "fig8b", "fig9", "fig10", "table1", "ablation",
        "hybrid", "frontier", "guided",
    ];
    assert_eq!(Registry::builtin().names(), expected);
}

#[test]
fn builtin_titles_are_nonempty_and_distinct() {
    let registry = Registry::builtin();
    let titles: Vec<&str> = registry.experiments().iter().map(|e| e.title()).collect();
    assert!(titles.iter().all(|t| !t.is_empty()));
    let mut unique = titles.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), titles.len(), "duplicate titles: {titles:?}");
}

#[test]
fn experiment_reports_carry_their_registry_name() {
    // The runner writes `<name>.json` from `Experiment::name`; the report
    // inside must agree, or results become unattributable.
    let registry = Registry::builtin();
    let sink = mpipu_bench::events::NullSink;
    let ctx = RunCtx::new(mpipu_bench::suite::SMOKE_SCALE, &sink);
    // One cheap, fully deterministic entry is enough to pin the contract
    // end to end; running all ten here would re-run the whole suite.
    let exp = registry.get("fig7").expect("fig7 registered");
    let report = exp.run(&ctx);
    assert_eq!(report.experiment, "fig7");
}

#[test]
fn default_run_options_target_results_dir() {
    let opts = RunOptions::default();
    assert_eq!(
        opts.out_dir.as_deref(),
        Some(std::path::Path::new("results"))
    );
    assert_eq!(opts.scale, 1.0);
    assert_eq!(opts.seed, None);
}
