//! Golden-file test for the sweep-event wire schema.
//!
//! Both the suite's `--events` stream and the `mpipu-serve` daemon emit
//! sweep progress through [`mpipu_bench::sweep_wire`]; this test pins
//! the exact JSONL shape so wire changes are a deliberate act: change a
//! field → bump [`mpipu_bench::sweep_wire::SWEEP_WIRE_VERSION`] →
//! regenerate the golden file (see `bless` below) → review the diff.

use mpipu_bench::sweep_wire::{sweep_event_json, SWEEP_WIRE_VERSION};
use mpipu_explore::SweepEvent;
use std::time::Duration;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sweep_wire.jsonl");

/// One specimen of every wire event, with fixed durations so the output
/// is byte-stable.
fn specimen_lines() -> String {
    let events = [
        SweepEvent::Started {
            points: 14880,
            chunks: 15,
            threads: 4,
        },
        SweepEvent::ChunkFinished {
            chunk: 0,
            chunks: 15,
            points_done: 1024,
            points: 14880,
        },
        SweepEvent::BackendStats {
            backend: "memoized",
            inner: "analytic-batched",
            hits: 13000,
            misses: 1880,
            entries: 1880,
        },
        SweepEvent::Finished {
            points: 14880,
            wall: Duration::from_micros(9250),
        },
        SweepEvent::Cancelled {
            points_done: 2048,
            points: 14880,
            wall: Duration::from_micros(1500),
        },
    ];
    let mut out = String::new();
    for e in &events {
        out.push_str(&sweep_event_json(e).to_string_compact());
        out.push('\n');
    }
    out
}

#[test]
fn sweep_wire_matches_golden_file() {
    let got = specimen_lines();
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {GOLDEN_PATH}: {e}\n\
             (run the `bless` test below to create it)"
        )
    });
    assert!(
        got == golden,
        "sweep wire format drifted from the golden file.\n\
         If this change is deliberate: bump SWEEP_WIRE_VERSION in \
         crates/bench/src/sweep_wire.rs, regenerate with\n\
         `BLESS=1 cargo test -p mpipu-bench --test sweep_wire_golden`, \
         and review the diff.\n\n--- golden ---\n{golden}\n--- got ---\n{got}"
    );
}

/// Regenerates the golden file when `BLESS=1` is set; otherwise a no-op.
#[test]
fn bless() {
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, specimen_lines()).expect("write golden file");
    }
}

/// The golden file itself must carry the current wire version — a
/// version bump without regeneration (or vice versa) fails here.
#[test]
fn golden_file_matches_wire_version() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    assert!(
        golden.contains(&format!("\"wire_version\":{SWEEP_WIRE_VERSION}")),
        "golden file wire_version != SWEEP_WIRE_VERSION ({SWEEP_WIRE_VERSION})"
    );
}
