//! Golden-file test pinning the `guided` experiment's full result JSON
//! at smoke scale.
//!
//! The guided search promises byte-determinism: seeded proposal streams,
//! ascending-id cohort folds, canonical tie collapse, and a fixed rung
//! schedule. This test holds that promise across refactors — any change
//! to the search's arithmetic, ordering, tie handling, or report layout
//! shows up as a diff against the committed golden file. Recall and
//! budget counters (the CI gates) are pinned along with everything else,
//! so a silent regression in search quality cannot slip through as
//! "still passes the threshold".
//!
//! Deliberate changes: regenerate with
//! `BLESS=1 cargo test -p mpipu-bench --test guided_golden` and review
//! the diff.

use mpipu_bench::events::NullSink;
use mpipu_bench::experiments::guided;
use mpipu_bench::runner::RunCtx;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/guided_report.json"
);

/// The same configuration the unit gates run: paper parameters at smoke
/// scale, the config's own fixed seed.
fn specimen() -> String {
    let cfg = guided::Config::paper(0.02);
    let sink = NullSink;
    guided::run(&cfg, &RunCtx::new(cfg.scale, &sink))
        .to_json()
        .to_string_pretty()
}

#[test]
fn guided_report_matches_golden_file() {
    let got = specimen();
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {GOLDEN_PATH}: {e}\n\
             (run the `bless` test below to create it)"
        )
    });
    assert!(
        got == golden,
        "guided report drifted from the golden file.\n\
         If this change is deliberate, regenerate with\n\
         `BLESS=1 cargo test -p mpipu-bench --test guided_golden` \
         and review the diff.\n\n--- golden ---\n{golden}\n--- got ---\n{got}"
    );
}

/// Regenerates the golden file when `BLESS=1` is set; otherwise a no-op.
#[test]
fn bless() {
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, specimen()).expect("write golden file");
    }
}
