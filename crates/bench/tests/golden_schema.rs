//! Golden-file test for the runner's JSON result schema.
//!
//! Downstream tooling parses the documents the suite writes under
//! `results/`; this test pins their exact shape so format changes are a
//! deliberate act: change the schema → regenerate the golden file (see
//! `bless` below) → bump [`mpipu_bench::report::SCHEMA_VERSION`] → review
//! the diff.

use mpipu_bench::report::{Cell, Report, Table, SCHEMA_VERSION};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/report_schema.json"
);

/// A hand-built report exercising every feature of the format: numeric
/// and text cells, integral and fractional numbers, non-finite numbers
/// (serialized as `null`), string escaping, multiple tables, and notes.
fn specimen() -> Report {
    let mut report = Report::new("specimen", "schema specimen — \"quoted\"", 0xC0FFEE, 0.25);
    let mut t1 = Table::new("metrics/main", &["precision", "value", "label"]);
    t1.push_row(vec![
        Cell::from(12u32),
        Cell::from(0.5),
        Cell::from("plain"),
    ]);
    t1.push_row(vec![
        Cell::from(16u32),
        Cell::Num(f64::NAN),
        Cell::from("tab\there"),
    ]);
    t1.push_row(vec![
        Cell::from(28u32),
        Cell::from(1.25e-9),
        Cell::from("unicode µ"),
    ]);
    report.tables.push(t1);
    let mut t2 = Table::new("empty", &["only_column"]);
    t2.rows.clear();
    report.tables.push(t2);
    report.note("first note");
    report.note("second note with \\ backslash");
    report
}

#[test]
fn report_json_matches_golden_file() {
    let got = specimen().to_json().to_string_pretty();
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {GOLDEN_PATH}: {e}\n\
             (run the `bless` test below to create it)"
        )
    });
    assert!(
        got == golden,
        "runner JSON schema drifted from the golden file.\n\
         If this change is deliberate: bump SCHEMA_VERSION in \
         crates/bench/src/report.rs, regenerate with\n\
         `BLESS=1 cargo test -p mpipu-bench --test golden_schema`, \
         and review the diff.\n\n--- golden ---\n{golden}\n--- got ---\n{got}"
    );
}

/// Regenerates the golden file when `BLESS=1` is set; otherwise a no-op.
#[test]
fn bless() {
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, specimen().to_json().to_string_pretty())
            .expect("write golden file");
    }
}

/// The golden file itself must carry the current schema version — a
/// version bump without regeneration (or vice versa) fails here.
#[test]
fn golden_file_matches_schema_version() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    assert!(
        golden.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
        "golden file schema_version != SCHEMA_VERSION ({SCHEMA_VERSION})"
    );
}
