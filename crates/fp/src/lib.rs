//! # `mpipu-fp` — bit-level floating-point formats for the mixed-precision IPU
//!
//! This crate provides the numeric substrate for the MLSys 2021 paper
//! *"Rethinking Floating Point Overheads for Mixed Precision DNN
//! Accelerators"*: software (bit-exact) implementations of the floating-point
//! formats the inner-product unit (IPU) consumes, plus the operand
//! decompositions the datapath performs.
//!
//! The key objects are:
//!
//! * [`Fp16`], [`Bf16`], [`Tf32`] — storage formats with IEEE-754-style
//!   semantics (normals, subnormals, ±Inf, NaN) and round-to-nearest-even
//!   conversions from/to `f32`/`f64`.
//! * [`SignedMagnitude`] — the 12-bit two's-complement *signed magnitude*
//!   `M[11:0]` of an FP16 operand together with its unbiased exponent; this
//!   is exactly the operand representation fed to the IPU's multipliers
//!   (paper §2.2, "Converting numbers").
//! * [`Nibbles`] — the `{N2, N1, N0}` decomposition of a signed magnitude
//!   into three 5-bit multiplier operands, with the implicit left shift of
//!   `N0` that preserves one extra bit through right-shift alignment.
//! * [`round`] — fixed-point → FP16/FP32 renormalization with
//!   round-to-nearest-even, used by the accumulator write-back path.
//!
//! Everything is deterministic and allocation-free; all invariants carry
//! property tests in the crate's test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod magnitude;
pub mod nibble;
pub mod round;

pub use format::{Bf16, Fp16, FpClass, FpFormat, Tf32};
pub use magnitude::SignedMagnitude;
pub use nibble::{GenericNibbles, Nibbles};
pub use round::{round_to_f32_rne, round_to_fp16_rne, FixedPoint};

/// Range of the unbiased exponent of a single FP16 value: `[-14, 15]`
/// (subnormals share `-14`; see paper Appendix A.2).
pub const FP16_EXP_RANGE: (i32, i32) = (-14, 15);

/// Range of the unbiased exponent of a *product* of two FP16 values:
/// `[-28, 30]`, hence a worst-case alignment of 58 bits (paper §1, §2.2).
pub const FP16_PRODUCT_EXP_RANGE: (i32, i32) = (-28, 30);

/// Worst-case alignment (exponent difference) between two FP16 products.
pub const FP16_MAX_ALIGNMENT: u32 = (FP16_PRODUCT_EXP_RANGE.1 - FP16_PRODUCT_EXP_RANGE.0) as u32;
