//! IEEE-754-style storage formats: FP16, BFloat16, TensorFloat-32.
//!
//! All three formats share the same five-class decoding (zero, subnormal,
//! normal, infinity, NaN — paper Table 2) and differ only in exponent and
//! mantissa widths. The generic machinery lives in [`FpFormat`]; the concrete
//! types are thin bit-pattern wrappers, so they are `Copy`, comparable by
//! bits, and free to construct.

/// Classification of a floating-point bit pattern (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpClass {
    /// Positive or negative zero.
    Zero,
    /// Subnormal (denormal): zero exponent field, non-zero mantissa.
    Subnormal,
    /// Normal number.
    Normal,
    /// Positive or negative infinity.
    Infinity,
    /// Not-a-number.
    Nan,
}

/// A binary interchange floating-point format parameterized by field widths.
///
/// Implementors store the raw bit pattern; this trait supplies bit-exact
/// decode/encode, classification, and round-to-nearest-even conversion from
/// `f64` (and therefore from `f32`, which embeds exactly in `f64`).
pub trait FpFormat: Copy {
    /// Number of exponent bits.
    const EXP_BITS: u32;
    /// Number of explicit mantissa (fraction) bits.
    const MAN_BITS: u32;
    /// Human-readable format name (for diagnostics and reports).
    const NAME: &'static str;

    /// Exponent bias: `2^(EXP_BITS-1) - 1`.
    const BIAS: i32 = (1 << (Self::EXP_BITS - 1)) - 1;
    /// Total storage width in bits (sign + exponent + mantissa).
    const TOTAL_BITS: u32 = 1 + Self::EXP_BITS + Self::MAN_BITS;
    /// Minimum unbiased exponent of a normal number (also used by
    /// subnormals after the `0.man` convention): `1 - BIAS`.
    const MIN_EXP: i32 = 1 - Self::BIAS;
    /// Maximum unbiased exponent of a finite number: `BIAS`.
    const MAX_EXP: i32 = (1 << (Self::EXP_BITS - 1)) - 1;

    /// Raw bit pattern, right-aligned in a `u32`.
    fn to_bits32(self) -> u32;
    /// Construct from a right-aligned raw bit pattern. Bits above
    /// [`Self::TOTAL_BITS`] are ignored.
    fn from_bits32(bits: u32) -> Self;

    /// Sign bit (`true` = negative).
    fn sign(self) -> bool {
        (self.to_bits32() >> (Self::EXP_BITS + Self::MAN_BITS)) & 1 == 1
    }

    /// Raw biased exponent field.
    fn biased_exp(self) -> u32 {
        (self.to_bits32() >> Self::MAN_BITS) & ((1 << Self::EXP_BITS) - 1)
    }

    /// Raw mantissa (fraction) field.
    fn mantissa(self) -> u32 {
        self.to_bits32() & ((1 << Self::MAN_BITS) - 1)
    }

    /// Classify the bit pattern into the five IEEE classes.
    fn classify(self) -> FpClass {
        let e = self.biased_exp();
        let m = self.mantissa();
        let emax = (1 << Self::EXP_BITS) - 1;
        match (e, m) {
            (0, 0) => FpClass::Zero,
            (0, _) => FpClass::Subnormal,
            (e, 0) if e == emax => FpClass::Infinity,
            (e, _) if e == emax => FpClass::Nan,
            _ => FpClass::Normal,
        }
    }

    /// `true` for ±Inf or NaN.
    fn is_non_finite(self) -> bool {
        matches!(self.classify(), FpClass::Infinity | FpClass::Nan)
    }

    /// Unbiased exponent as the IPU's exponent-handling unit sees it:
    /// `biased_exp - BIAS` for normals, `1 - BIAS` for zeros/subnormals
    /// (paper Fig 12 note: `exp(x) = x's exponent - bias + 1` for
    /// subnormals).
    fn unbiased_exp(self) -> i32 {
        let e = self.biased_exp();
        if e == 0 {
            Self::MIN_EXP
        } else {
            e as i32 - Self::BIAS
        }
    }

    /// Integer magnitude: `1.man` for normals, `0.man` for subnormals,
    /// expressed as an integer in units of `2^-MAN_BITS`
    /// (i.e. `(1 << MAN_BITS) | man` or plain `man`).
    fn magnitude(self) -> u32 {
        match self.classify() {
            FpClass::Normal => (1 << Self::MAN_BITS) | self.mantissa(),
            _ => self.mantissa(),
        }
    }

    /// Exact value as `f64` (every format here embeds exactly in `f64`).
    /// NaN decodes to a quiet NaN; infinities keep their sign.
    fn to_f64(self) -> f64 {
        match self.classify() {
            FpClass::Nan => f64::NAN,
            FpClass::Infinity => {
                if self.sign() {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            _ => {
                let mag = self.magnitude() as f64;
                let scale = self.unbiased_exp() - Self::MAN_BITS as i32;
                let v = mag * (scale as f64).exp2();
                if self.sign() {
                    -v
                } else {
                    v
                }
            }
        }
    }

    /// Exact value as `f32`. Exact for FP16/BF16/TF32 since all fit in
    /// single precision without rounding.
    fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Convert from `f64` with round-to-nearest-even, overflow to ±Inf,
    /// and gradual underflow to subnormals, matching IEEE 754 semantics.
    fn from_f64(x: f64) -> Self {
        Self::from_bits32(encode_rne(x, Self::EXP_BITS, Self::MAN_BITS))
    }

    /// Convert from `f32` (widens exactly to `f64`, then rounds once —
    /// no double-rounding hazard because the widening is exact).
    fn from_f32(x: f32) -> Self {
        Self::from_f64(f64::from(x))
    }
}

/// Round-to-nearest-even encoder shared by all formats.
///
/// Decomposes the `f64` input and re-rounds its 52-bit mantissa into the
/// target format, handling overflow (→ ±Inf), gradual underflow
/// (→ subnormal), and underflow to zero.
fn encode_rne(x: f64, exp_bits: u32, man_bits: u32) -> u32 {
    let bias: i32 = (1 << (exp_bits - 1)) - 1;
    let emax_field: u32 = (1 << exp_bits) - 1;
    let sign_shift = exp_bits + man_bits;
    let bits = x.to_bits();
    let sign = ((bits >> 63) as u32) << sign_shift;

    if x.is_nan() {
        // Quiet NaN: all-ones exponent, MSB of mantissa set.
        return sign | (emax_field << man_bits) | (1 << (man_bits - 1));
    }
    if x.is_infinite() {
        return sign | (emax_field << man_bits);
    }
    if x == 0.0 {
        return sign;
    }

    // f64 magnitude as (m52 with implicit bit, unbiased exponent).
    let e64 = ((bits >> 52) & 0x7ff) as i32;
    let m64 = bits & ((1u64 << 52) - 1);
    let (frac, exp) = if e64 == 0 {
        // f64 subnormal: renormalize.
        let nz = 63 - m64.leading_zeros() as i32; // position of leading 1
        (m64 << (52 - nz), -1022 - (52 - nz))
    } else {
        ((1u64 << 52) | m64, e64 - 1023)
    };
    // `frac` has its leading 1 at bit 52; value = frac * 2^(exp-52).

    // Target biased exponent if the number stays normal.
    let mut e_t = exp + bias;
    // Shift needed to reduce the 52-bit fraction to `man_bits`, possibly
    // widened for subnormal outputs.
    let mut shift = 52 - man_bits as i32;
    if e_t <= 0 {
        // Subnormal in the target: shift further so the exponent field is 0.
        shift += 1 - e_t;
        e_t = 0;
        if shift >= 64 {
            // Underflows past sticky range: rounds to zero.
            return sign;
        }
    }

    let shift = shift as u32;
    let kept = frac >> shift;
    let rem = frac & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    let mut m_t = kept;
    if rem > half || (rem == half && (kept & 1) == 1) {
        m_t += 1;
    }

    // Rounding may carry out of the mantissa.
    if m_t >> man_bits >= 2 {
        m_t >>= 1;
        e_t += 1;
    }
    if e_t == 0 && m_t >> man_bits == 1 {
        // Subnormal rounded up into the smallest normal.
        e_t = 1;
        m_t &= (1u64 << man_bits) - 1;
    }
    if e_t >= emax_field as i32 {
        // Overflow: round-to-nearest-even overflows to infinity.
        return sign | (emax_field << man_bits);
    }
    let m_field = (m_t as u32) & ((1 << man_bits) - 1);
    let e_field = if e_t > 0 { e_t as u32 } else { 0 };
    // Normal outputs must have consumed the implicit bit.
    debug_assert!(e_field != 0 || m_t >> man_bits == 0);
    sign | (e_field << man_bits) | m_field
}

macro_rules! fp_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $exp:expr, $man:expr, $sname:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $repr);

        impl FpFormat for $name {
            const EXP_BITS: u32 = $exp;
            const MAN_BITS: u32 = $man;
            const NAME: &'static str = $sname;

            fn to_bits32(self) -> u32 {
                self.0 as u32
            }
            fn from_bits32(bits: u32) -> Self {
                $name((bits & ((1u32 << Self::TOTAL_BITS) - 1)) as $repr)
            }
        }

        impl From<f32> for $name {
            fn from(x: f32) -> Self {
                Self::from_f32(x)
            }
        }
        impl From<$name> for f32 {
            fn from(x: $name) -> f32 {
                x.to_f32()
            }
        }
        impl From<$name> for f64 {
            fn from(x: $name) -> f64 {
                x.to_f64()
            }
        }
        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", self.to_f32())
            }
        }
    };
}

fp_type!(
    /// IEEE 754 half precision: 1 sign, 5 exponent, 10 mantissa bits.
    ///
    /// This is the primary operand type of the paper's FP mode. Its 12-bit
    /// signed magnitude feeds the nibble decomposition in
    /// [`crate::nibble::Nibbles`].
    ///
    /// # Example
    ///
    /// ```
    /// use mpipu_fp::{Fp16, FpFormat};
    ///
    /// let x = Fp16::from_f32(1.5);
    /// assert_eq!(x.0, 0x3e00);        // raw bit pattern
    /// assert_eq!(x.to_f64(), 1.5);    // exact decode
    ///
    /// // Encoding rounds to nearest-even and saturates past 65520:
    /// assert_eq!(Fp16::from_f32(65504.0), Fp16::MAX);
    /// assert!(Fp16::from_f32(65536.0).is_non_finite());
    /// ```
    Fp16,
    u16,
    5,
    10,
    "fp16"
);
fp_type!(
    /// Google BFloat16: 1 sign, 8 exponent, 7 mantissa bits.
    ///
    /// Supported by the architecture via an 8-bit-exponent EHU and four
    /// nibble iterations (paper §5 / Appendix B).
    Bf16,
    u16,
    8,
    7,
    "bf16"
);
fp_type!(
    /// Nvidia TensorFloat-32: 1 sign, 8 exponent, 10 mantissa bits
    /// (19 bits of storage, right-aligned here in a `u32`).
    Tf32,
    u32,
    8,
    10,
    "tf32"
);

impl Fp16 {
    /// Largest finite FP16 value (65504).
    pub const MAX: Fp16 = Fp16(0x7bff);
    /// Smallest positive normal FP16 value (2^-14).
    pub const MIN_POSITIVE: Fp16 = Fp16(0x0400);
    /// Smallest positive subnormal FP16 value (2^-24).
    pub const MIN_SUBNORMAL: Fp16 = Fp16(0x0001);
    /// Positive infinity.
    pub const INFINITY: Fp16 = Fp16(0x7c00);
    /// One.
    pub const ONE: Fp16 = Fp16(0x3c00);
    /// Zero.
    pub const ZERO: Fp16 = Fp16(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp16_known_constants() {
        assert_eq!(Fp16::ONE.to_f32(), 1.0);
        assert_eq!(Fp16::MAX.to_f32(), 65504.0);
        assert_eq!(Fp16::MIN_POSITIVE.to_f64(), 2f64.powi(-14));
        assert_eq!(Fp16::MIN_SUBNORMAL.to_f64(), 2f64.powi(-24));
        assert_eq!(Fp16::from_f32(0.5).0, 0x3800);
        assert_eq!(Fp16::from_f32(-2.0).0, 0xc000);
    }

    #[test]
    fn fp16_classify() {
        assert_eq!(Fp16(0x0000).classify(), FpClass::Zero);
        assert_eq!(Fp16(0x8000).classify(), FpClass::Zero);
        assert_eq!(Fp16(0x0001).classify(), FpClass::Subnormal);
        assert_eq!(Fp16(0x3c00).classify(), FpClass::Normal);
        assert_eq!(Fp16(0x7c00).classify(), FpClass::Infinity);
        assert_eq!(Fp16(0x7c01).classify(), FpClass::Nan);
        assert_eq!(Fp16(0xfc00).classify(), FpClass::Infinity);
    }

    #[test]
    fn fp16_exponent_ranges() {
        assert_eq!(Fp16::MIN_EXP, -14);
        assert_eq!(Fp16::MAX_EXP, 15);
        assert_eq!(Fp16::BIAS, 15);
        assert_eq!(Fp16(0x0001).unbiased_exp(), -14);
        assert_eq!(Fp16(0x7bff).unbiased_exp(), 15);
    }

    #[test]
    fn fp16_overflow_to_inf_and_underflow_to_zero() {
        assert_eq!(Fp16::from_f32(1e9).classify(), FpClass::Infinity);
        assert_eq!(Fp16::from_f32(-1e9).to_f32(), f32::NEG_INFINITY);
        assert_eq!(Fp16::from_f32(1e-12).classify(), FpClass::Zero);
        // 65520 is the RNE overflow threshold for FP16.
        assert_eq!(Fp16::from_f32(65519.0).to_f32(), 65504.0);
        assert_eq!(Fp16::from_f32(65520.0).classify(), FpClass::Infinity);
    }

    #[test]
    fn fp16_rne_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next FP16;
        // ties go to even (mantissa 0 ⇒ stays 1.0).
        let halfway = 1.0f64 + 2f64.powi(-11);
        assert_eq!(Fp16::from_f64(halfway).to_f64(), 1.0);
        // 1 + 3*2^-11 is halfway between nextafter(1) and next-next;
        // ties-to-even rounds mantissa to 2.
        let halfway2 = 1.0f64 + 3.0 * 2f64.powi(-11);
        assert_eq!(Fp16::from_f64(halfway2).mantissa(), 2);
    }

    #[test]
    fn fp16_subnormal_roundtrip() {
        for bits in 1u16..1024 {
            let x = Fp16(bits);
            assert_eq!(x.classify(), FpClass::Subnormal);
            assert_eq!(Fp16::from_f64(x.to_f64()).0, bits);
        }
    }

    #[test]
    fn fp16_all_finite_roundtrip_exact() {
        for bits in 0u16..=u16::MAX {
            let x = Fp16(bits);
            if x.is_non_finite() {
                continue;
            }
            let back = Fp16::from_f64(x.to_f64());
            // -0.0 → f64 -0.0 → back to -0.0: sign preserved.
            assert_eq!(back.0, bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn bf16_tracks_f32_truncation_semantics() {
        for &v in &[1.0f32, -3.5, 0.1, 1234.5678, 3.0e38, 1.0e-40] {
            let b = Bf16::from_f32(v);
            // BF16 RNE from f32 equals rounding the top 16 bits of the f32.
            let manual = {
                let bits = v.to_bits();
                let lower = bits & 0xffff;
                let mut upper = bits >> 16;
                if lower > 0x8000 || (lower == 0x8000 && (upper & 1) == 1) {
                    upper += 1;
                }
                upper as u16
            };
            assert_eq!(b.0, manual, "value {v}");
        }
    }

    #[test]
    fn tf32_has_fp16_mantissa_fp32_exponent() {
        assert_eq!(Tf32::EXP_BITS, 8);
        assert_eq!(Tf32::MAN_BITS, 10);
        let x = Tf32::from_f32(1.0e30);
        assert_eq!(x.classify(), FpClass::Normal);
        assert!((x.to_f32() - 1.0e30).abs() / 1.0e30 < 1e-3);
    }

    #[test]
    fn nan_propagates() {
        assert_eq!(Fp16::from_f32(f32::NAN).classify(), FpClass::Nan);
        assert!(Fp16::from_f32(f32::NAN).to_f32().is_nan());
        assert_eq!(Bf16::from_f32(f32::NAN).classify(), FpClass::Nan);
        assert_eq!(Tf32::from_f32(f32::NAN).classify(), FpClass::Nan);
    }

    #[test]
    fn magnitude_has_implicit_bit_for_normals_only() {
        assert_eq!(Fp16::ONE.magnitude(), 1 << 10);
        assert_eq!(Fp16(0x0001).magnitude(), 1);
        assert_eq!(Fp16(0x3c01).magnitude(), (1 << 10) | 1);
    }
}
