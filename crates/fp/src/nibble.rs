//! Nibble decomposition of operands for the 5b×5b multiplier array.
//!
//! The IPU's multipliers are 5-bit signed. A 12-bit signed magnitude
//! `M[11:0]` is decomposed into three 5-bit operands (paper §2.2):
//!
//! ```text
//! N2 = { M11 .. M7 }      — signed slice, carries the sign
//! N1 = { 0, M6 .. M3 }    — unsigned slice, zero-extended
//! N0 = { 0, M2 .. M0, 0 } — unsigned slice, pre-shifted LEFT by one
//! ```
//!
//! which satisfies the exact identity
//! `M = N2·2^7 + N1·2^3 + N0·2^{-1}` — the trailing zero in `N0` is the
//! paper's "implicit left shift of operands" that preserves one extra bit
//! through the right-shift/truncate alignment path.
//!
//! INT-mode operands use the plain radix-16 split ([`Nibbles::from_int`]):
//! the most-significant nibble is a signed 5-bit slice (or zero-extended
//! for unsigned operands) and all lower nibbles are unsigned 4-bit slices.

use crate::magnitude::SignedMagnitude;

/// Weight (log2) of each FP-mode nibble within the signed magnitude:
/// `M = Σ N_i · 2^WEIGHT[i]` with `N0` pre-shifted left by one.
pub const FP_NIBBLE_WEIGHTS: [i32; 3] = [-1, 3, 7];

/// Number of nibbles an FP16 signed magnitude decomposes into.
pub const FP16_NIBBLES: usize = 3;

/// A multi-nibble operand: little-endian vector of 5-bit signed multiplier
/// inputs plus the operand's exponent metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nibbles {
    /// Nibble values, least significant first. Each fits a 5-bit signed
    /// multiplier input: `[-16, 15]`.
    pub n: Vec<i8>,
    /// `true` if this is the FP decomposition (N0 pre-shifted left by 1).
    pub fp_preshift: bool,
}

impl Nibbles {
    /// FP16 decomposition: `{N2, N1, N0}` from a 12-bit signed magnitude.
    ///
    /// # Panics
    /// Panics if `sm.m` does not fit 12 bits two's complement.
    pub fn from_fp16_magnitude(sm: SignedMagnitude) -> Self {
        let m = sm.m;
        assert!(
            (-2048..=2047).contains(&m),
            "FP16 signed magnitude must fit 12 bits, got {m}"
        );
        let n2 = (m >> 7) as i8; // arithmetic: signed top slice
        let n1 = ((m >> 3) & 0xf) as i8; // zero-extended
        let n0 = ((m & 0x7) as i8) << 1; // pre-shifted left
        Nibbles {
            n: vec![n0, n1, n2],
            fp_preshift: true,
        }
    }

    /// INT-mode decomposition into `k` 4-bit nibbles.
    ///
    /// For `signed` operands the top nibble is an arithmetic (sign-carrying)
    /// slice; for unsigned operands every nibble is a plain 4-bit slice —
    /// the 5th multiplier bit absorbs the unsigned range (paper §2:
    /// "INT4 IPU multiplications, both signed or unsigned").
    ///
    /// # Panics
    /// Panics if `v` does not fit `4k` bits in the requested signedness.
    pub fn from_int(v: i32, k: usize, signed: bool) -> Self {
        assert!((1..=8).contains(&k), "nibble count {k} out of range");
        let bits = 4 * k as u32;
        if signed {
            let lo = -(1i64 << (bits - 1));
            let hi = (1i64 << (bits - 1)) - 1;
            assert!(
                (lo..=hi).contains(&(v as i64)),
                "{v} does not fit INT{bits} signed"
            );
        } else {
            assert!(
                v >= 0 && (v as i64) < (1i64 << bits),
                "{v} does not fit INT{bits} unsigned"
            );
        }
        let mut n = Vec::with_capacity(k);
        for i in 0..k {
            let nib = if i + 1 == k && signed {
                // Top slice: arithmetic shift keeps the sign.
                ((v << (32 - bits)) >> (32 - 4)) as i8
            } else {
                ((v >> (4 * i)) & 0xf) as i8
            };
            n.push(nib);
        }
        Nibbles {
            n,
            fp_preshift: false,
        }
    }

    /// Number of nibbles.
    pub fn len(&self) -> usize {
        self.n.len()
    }

    /// `true` if there are no nibbles (never produced by constructors).
    pub fn is_empty(&self) -> bool {
        self.n.is_empty()
    }

    /// Reconstruct the integer value (inverse of the decomposition).
    pub fn reconstruct(&self) -> i64 {
        if self.fp_preshift {
            // M·2 = N2·2^8 + N1·2^4 + N0 — evaluate at doubled scale to
            // stay integral, then halve.
            let doubled: i64 = self
                .n
                .iter()
                .enumerate()
                .map(|(i, &nib)| (nib as i64) << (4 * i))
                .sum();
            debug_assert_eq!(doubled & 1, 0);
            doubled >> 1
        } else {
            self.n
                .iter()
                .enumerate()
                .map(|(i, &nib)| (nib as i64) << (4 * i))
                .sum()
        }
    }

    /// The weight (log2 of positional scale) of nibble `i` relative to the
    /// operand's LSB grid, as used in product alignment.
    pub fn weight(&self, i: usize) -> i32 {
        if self.fp_preshift {
            FP_NIBBLE_WEIGHTS[i]
        } else {
            4 * i as i32
        }
    }
}

/// Generic signed-magnitude decomposition for arbitrary formats
/// (paper §5 / Appendix B: BF16 and TF32 support).
///
/// A `mag_bits`-wide signed magnitude is sliced from the top: a 5-bit
/// signed slice, then 4-bit unsigned slices. When the final slice has at
/// most 3 payload bits it is pre-shifted left by one (the FP16 `N0`
/// trick); otherwise it is zero-extended. Slice weights step by 4, which
/// is what lets the accumulator reuse its uniform `4·Δ` shift grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericNibbles {
    /// Nibble values, least significant first (each fits 5-bit signed).
    pub n: Vec<i8>,
    /// Positional weight (log2) of each nibble; `weights[i+1] − weights[i]
    /// = 4`.
    pub weights: Vec<i32>,
}

impl GenericNibbles {
    /// Decompose a `mag_bits`-wide signed magnitude.
    ///
    /// # Panics
    /// Panics if `m` does not fit `mag_bits` bits two's complement, or if
    /// `mag_bits` is not in `6..=13`.
    pub fn from_magnitude(m: i32, mag_bits: u32) -> Self {
        assert!(
            (6..=13).contains(&mag_bits),
            "magnitude width {mag_bits} unsupported"
        );
        let lo = -(1i32 << (mag_bits - 1));
        let hi = (1i32 << (mag_bits - 1)) - 1;
        assert!((lo..=hi).contains(&m), "{m} does not fit {mag_bits} bits");
        // Top slice keeps 5 signed bits; the remainder splits on a 4-bit
        // grid anchored at the top, so the lowest slice holds
        // `low_bits mod 4` bits (or 4 when it divides evenly).
        let low_bits = mag_bits - 5;
        let k = (low_bits as usize).div_ceil(4) + 1;
        let mut n = Vec::with_capacity(k);
        let mut weights = Vec::with_capacity(k);
        let mut consumed = 0u32;
        while consumed < low_bits {
            let this = match low_bits % 4 {
                r if consumed == 0 && r != 0 => r,
                _ => 4,
            };
            let val = ((m >> consumed) & ((1 << this) - 1)) as i8;
            if this <= 3 {
                // Pre-shift to preserve one extra bit through truncation.
                n.push(val << 1);
                weights.push(consumed as i32 - 1);
            } else {
                n.push(val);
                weights.push(consumed as i32);
            }
            consumed += this;
        }
        n.push((m >> consumed) as i8); // signed top slice
        weights.push(consumed as i32);
        GenericNibbles { n, weights }
    }

    /// Number of nibbles (iterations per operand).
    pub fn len(&self) -> usize {
        self.n.len()
    }

    /// `true` if empty (never produced by the constructor).
    pub fn is_empty(&self) -> bool {
        self.n.is_empty()
    }

    /// Weight of the most significant slice.
    pub fn top_weight(&self) -> i32 {
        *self.weights.last().unwrap()
    }

    /// Reconstruct the signed magnitude (inverse of the decomposition).
    pub fn reconstruct(&self) -> i64 {
        self.n
            .iter()
            .zip(&self.weights)
            .map(|(&nib, &w)| {
                if w >= 0 {
                    (nib as i64) << w
                } else {
                    debug_assert_eq!(nib & 1, 0);
                    (nib as i64) >> (-w)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp16, FpFormat};

    #[test]
    fn fp16_nibble_identity_all_values() {
        for bits in 0u16..=u16::MAX {
            let x = Fp16(bits);
            if x.is_non_finite() {
                continue;
            }
            let sm = SignedMagnitude::from_fp16(x).unwrap();
            let nb = Nibbles::from_fp16_magnitude(sm);
            assert_eq!(nb.reconstruct(), sm.m as i64, "bits {bits:#06x}");
        }
    }

    #[test]
    fn fp16_nibbles_fit_5bit_signed_multiplier() {
        for m in -2047i32..=2047 {
            let nb = Nibbles::from_fp16_magnitude(SignedMagnitude { m, exp: 0 });
            assert!((-16..=15).contains(&(nb.n[2] as i32)), "N2 of {m}");
            assert!((0..=15).contains(&(nb.n[1] as i32)), "N1 of {m}");
            assert!((0..=14).contains(&(nb.n[0] as i32)), "N0 of {m}");
            assert_eq!(nb.n[0] & 1, 0, "N0 trailing zero of {m}");
        }
    }

    #[test]
    fn fp16_nibble_weights() {
        let nb = Nibbles::from_fp16_magnitude(SignedMagnitude { m: 123, exp: 0 });
        assert_eq!(nb.weight(0), -1);
        assert_eq!(nb.weight(1), 3);
        assert_eq!(nb.weight(2), 7);
        // Identity via weights: M = Σ N_i 2^{w_i}  (N0's -1 compensates the
        // pre-shift).
        let m: f64 = (0..3)
            .map(|i| nb.n[i] as f64 * (nb.weight(i) as f64).exp2())
            .sum();
        assert_eq!(m, 123.0);
    }

    #[test]
    fn int8_signed_decomposition() {
        for v in -128i32..=127 {
            let nb = Nibbles::from_int(v, 2, true);
            assert_eq!(nb.reconstruct(), v as i64, "{v}");
            assert!((-8..=7).contains(&(nb.n[1] as i32)));
            assert!((0..=15).contains(&(nb.n[0] as i32)));
        }
    }

    #[test]
    fn int8_unsigned_decomposition() {
        for v in 0i32..=255 {
            let nb = Nibbles::from_int(v, 2, false);
            assert_eq!(nb.reconstruct(), v as i64);
            assert!(nb.n.iter().all(|&x| (0..=15).contains(&(x as i32))));
        }
    }

    #[test]
    fn int12_and_int16_roundtrip_samples() {
        for &v in &[-2048i32, -1, 0, 1, 2047, -1234, 999] {
            assert_eq!(Nibbles::from_int(v, 3, true).reconstruct(), v as i64);
        }
        for &v in &[-32768i32, 32767, -20000, 12345] {
            assert_eq!(Nibbles::from_int(v, 4, true).reconstruct(), v as i64);
        }
        for &v in &[0i32, 15, 255, 4095, 65535] {
            assert_eq!(Nibbles::from_int(v, 4, false).reconstruct(), v as i64);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn int4_overflow_panics() {
        let _ = Nibbles::from_int(8, 1, true);
    }

    #[test]
    fn int4_boundaries() {
        assert_eq!(Nibbles::from_int(-8, 1, true).reconstruct(), -8);
        assert_eq!(Nibbles::from_int(7, 1, true).reconstruct(), 7);
        assert_eq!(Nibbles::from_int(15, 1, false).reconstruct(), 15);
    }
}

#[cfg(test)]
mod generic_tests {
    use super::*;
    use crate::{Bf16, Fp16, FpFormat, SignedMagnitude, Tf32};

    #[test]
    fn fp16_generic_matches_dedicated_decomposition() {
        for m in -2047i32..=2047 {
            let g = GenericNibbles::from_magnitude(m, 12);
            let d = Nibbles::from_fp16_magnitude(SignedMagnitude { m, exp: 0 });
            assert_eq!(g.n, d.n, "m = {m}");
            assert_eq!(g.weights, vec![-1, 3, 7]);
            assert_eq!(g.reconstruct(), m as i64);
        }
    }

    #[test]
    fn bf16_magnitudes_use_two_nibbles() {
        // BF16 magnitude: 1.man7 + sign = 9 bits ⇒ 2 nibbles ⇒ the four
        // nibble iterations the paper quotes for BF16 (Appendix B).
        for bits in 0u16..=u16::MAX {
            let x = Bf16(bits);
            if x.is_non_finite() {
                continue;
            }
            let mag = x.magnitude() as i32;
            let m = if x.sign() { -mag } else { mag };
            let g = GenericNibbles::from_magnitude(m, 9);
            assert_eq!(g.len(), 2, "bits {bits:#06x}");
            assert_eq!(g.reconstruct(), m as i64);
            assert!(g.n.iter().all(|&v| (-16..=15).contains(&(v as i32))));
        }
    }

    #[test]
    fn tf32_magnitudes_use_three_nibbles() {
        for bits in (0u32..(1 << 19)).step_by(13) {
            let x = Tf32(bits);
            if x.is_non_finite() {
                continue;
            }
            let mag = x.magnitude() as i32;
            let m = if x.sign() { -mag } else { mag };
            let g = GenericNibbles::from_magnitude(m, 12);
            assert_eq!(g.len(), 3);
            assert_eq!(g.reconstruct(), m as i64);
        }
    }

    #[test]
    fn top_weight_positions() {
        assert_eq!(GenericNibbles::from_magnitude(100, 12).top_weight(), 7);
        assert_eq!(GenericNibbles::from_magnitude(100, 9).top_weight(), 4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn magnitude_range_checked() {
        GenericNibbles::from_magnitude(256, 9);
    }

    #[test]
    fn fp16_all_finite_roundtrip() {
        for bits in (0u16..=u16::MAX).step_by(3) {
            let x = Fp16(bits);
            if x.is_non_finite() {
                continue;
            }
            let sm = SignedMagnitude::from_fp16(x).unwrap();
            let g = GenericNibbles::from_magnitude(sm.m, 12);
            assert_eq!(g.reconstruct(), sm.m as i64);
        }
    }
}
