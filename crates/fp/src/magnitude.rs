//! Signed-magnitude operand representation (paper §2.2, "Converting
//! numbers").
//!
//! Before an FP16 operand enters the IPU it is decoded into a pair
//! *(signed magnitude, unbiased exponent)*: the magnitude is `1.mantissa`
//! (normal) or `0.mantissa` (subnormal) with the sign applied, held as a
//! 12-bit two's-complement integer `M[11:0]`, and the exponent is the
//! unbiased exponent the exponent-handling unit (EHU) consumes.

use crate::format::{FpClass, FpFormat};

/// A decoded FP operand: 12-bit two's-complement signed magnitude plus
/// unbiased exponent.
///
/// The represented real value is `m * 2^(exp - 10)` — the magnitude is an
/// integer in units of 2^-10 relative to its own exponent (10 = FP16
/// mantissa bits). INT-mode operands reuse this struct with `exp = 0`
/// (paper §2.1: "In INT mode, we assume exp = max exponent = 0").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedMagnitude {
    /// Two's-complement signed magnitude, in `[-2047, 2047]` for FP16
    /// operands (11 magnitude bits + sign fits 12 bits).
    pub m: i32,
    /// Unbiased exponent (`[-14, 15]` for FP16; subnormals use −14).
    pub exp: i32,
}

impl SignedMagnitude {
    /// Number of fraction bits the magnitude carries relative to its
    /// exponent (FP16 mantissa width).
    pub const FRAC_BITS: u32 = 10;

    /// Decode an FP16 value. Infinities and NaNs are not representable in
    /// the datapath; the paper's FP-IP pseudocode assumes "neither INF nor
    /// NaN in the inputs" (Appendix A.2), so those return `None`.
    pub fn from_fp16(x: crate::Fp16) -> Option<Self> {
        match x.classify() {
            FpClass::Infinity | FpClass::Nan => None,
            _ => {
                let mag = x.magnitude() as i32;
                Some(SignedMagnitude {
                    m: if x.sign() { -mag } else { mag },
                    exp: x.unbiased_exp(),
                })
            }
        }
    }

    /// Decode an `f32` by first rounding it to FP16 (the storage format of
    /// the FP mode), then decoding. Panics on non-finite input.
    pub fn from_f32_via_fp16(x: f32) -> Self {
        Self::from_fp16(crate::Fp16::from_f32(x))
            .expect("non-finite value cannot enter the IPU datapath")
    }

    /// An INT-mode operand: plain integer with `exp = 0`.
    ///
    /// `v` must fit the datapath's nibble decomposition for the chosen
    /// width (callers validate ranges; see `mpipu-datapath`).
    pub fn from_int(v: i32) -> Self {
        SignedMagnitude { m: v, exp: 0 }
    }

    /// Exact real value: `m * 2^(exp - FRAC_BITS)`.
    pub fn to_f64(self) -> f64 {
        self.m as f64 * ((self.exp - Self::FRAC_BITS as i32) as f64).exp2()
    }

    /// Exponent of the *product* of two operands (EHU stage 1:
    /// element-wise sum of unbiased exponents).
    pub fn product_exp(self, rhs: Self) -> i32 {
        self.exp + rhs.exp
    }

    /// `true` if the operand encodes zero (magnitude 0).
    pub fn is_zero(self) -> bool {
        self.m == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fp16;

    #[test]
    fn decode_one() {
        let sm = SignedMagnitude::from_fp16(Fp16::ONE).unwrap();
        assert_eq!(sm.m, 1 << 10);
        assert_eq!(sm.exp, 0);
        assert_eq!(sm.to_f64(), 1.0);
    }

    #[test]
    fn decode_negative() {
        let sm = SignedMagnitude::from_f32_via_fp16(-1.5);
        assert_eq!(sm.m, -(3 << 9));
        assert_eq!(sm.exp, 0);
        assert_eq!(sm.to_f64(), -1.5);
    }

    #[test]
    fn decode_subnormal() {
        let sm = SignedMagnitude::from_fp16(Fp16(0x0001)).unwrap();
        assert_eq!(sm.m, 1);
        assert_eq!(sm.exp, -14);
        assert_eq!(sm.to_f64(), 2f64.powi(-24));
    }

    #[test]
    fn decode_max() {
        let sm = SignedMagnitude::from_fp16(Fp16::MAX).unwrap();
        assert_eq!(sm.m, 2047);
        assert_eq!(sm.exp, 15);
        assert_eq!(sm.to_f64(), 65504.0);
    }

    #[test]
    fn rejects_non_finite() {
        assert!(SignedMagnitude::from_fp16(Fp16::INFINITY).is_none());
        assert!(SignedMagnitude::from_fp16(Fp16(0x7c01)).is_none());
    }

    #[test]
    fn roundtrip_all_finite_fp16() {
        for bits in 0u16..=u16::MAX {
            let x = Fp16(bits);
            if x.is_non_finite() {
                continue;
            }
            let sm = SignedMagnitude::from_fp16(x).unwrap();
            assert_eq!(sm.to_f64(), x.to_f64(), "bits {bits:#06x}");
            assert!(sm.m.abs() <= 2047);
            assert!((-14..=15).contains(&sm.exp));
        }
    }

    #[test]
    fn product_exponent_range_is_minus28_to_30() {
        // Paper §2.2: FP16 product exponents span [-28, 30].
        let lo = SignedMagnitude::from_fp16(Fp16(0x0001)).unwrap();
        let hi = SignedMagnitude::from_fp16(Fp16::MAX).unwrap();
        assert_eq!(lo.product_exp(lo), -28);
        assert_eq!(hi.product_exp(hi), 30);
        assert_eq!(crate::FP16_MAX_ALIGNMENT, 58);
    }
}
