//! Fixed-point → floating-point write-back rounding.
//!
//! The IPU accumulator is a non-normalized fixed-point register paired with
//! an exponent (paper §2.2, "The accumulator operations"). "Before writing
//! back the result to memory, the result is rounded to its standard format
//! (i.e., FP16 or FP32)". This module implements that renormalization with
//! round-to-nearest-even, exactly, for arbitrary `i128` magnitudes — no
//! intermediate double rounding.

use crate::format::Fp16;

/// An exact fixed-point value `mag * 2^lsb_pow2`.
///
/// `mag` is the two's-complement accumulator contents; `lsb_pow2` is the
/// power-of-two weight of its least significant bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPoint {
    /// Signed magnitude of the fixed-point value.
    pub mag: i128,
    /// Power-of-two weight of bit 0 of `mag`.
    pub lsb_pow2: i32,
}

impl FixedPoint {
    /// Zero.
    pub const ZERO: FixedPoint = FixedPoint {
        mag: 0,
        lsb_pow2: 0,
    };

    /// Exact value as `f64` **if** the magnitude fits 53 bits (always true
    /// for the paper's accumulator widths); otherwise correctly rounded.
    pub fn to_f64(self) -> f64 {
        self.mag as f64 * (self.lsb_pow2 as f64).exp2()
    }

    /// Round to `f32` with round-to-nearest-even (exact integer path).
    pub fn to_f32_rne(self) -> f32 {
        round_to_f32_rne(self.mag, self.lsb_pow2)
    }

    /// Round to FP16 with round-to-nearest-even (exact integer path).
    pub fn to_fp16_rne(self) -> Fp16 {
        round_to_fp16_rne(self.mag, self.lsb_pow2)
    }
}

/// Round `mag * 2^lsb_pow2` to the nearest `f32` (ties to even).
/// Overflows saturate to ±Inf, matching IEEE semantics.
pub fn round_to_f32_rne(mag: i128, lsb_pow2: i32) -> f32 {
    match round_parts(mag, lsb_pow2, 24, -149, 127) {
        Rounded::Zero => 0.0,
        Rounded::Overflow(neg) => {
            if neg {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            }
        }
        Rounded::Finite { neg, m, lsb } => {
            // m ≤ 2^24 fits f64 exactly; ldexp via exp2 is exact here.
            let v = (m as f64) * (lsb as f64).exp2();
            let v = if neg { -v } else { v };
            v as f32 // exact: already on the f32 grid
        }
    }
}

/// Round `mag * 2^lsb_pow2` to the nearest FP16 (ties to even).
/// Overflows saturate to ±Inf.
pub fn round_to_fp16_rne(mag: i128, lsb_pow2: i32) -> Fp16 {
    match round_parts(mag, lsb_pow2, 11, -24, 15) {
        Rounded::Zero => Fp16::ZERO,
        Rounded::Overflow(neg) => Fp16(if neg { 0xfc00 } else { 0x7c00 }),
        Rounded::Finite { neg, m, lsb } => {
            // Reassemble the FP16 bit pattern from (m, lsb).
            // Normal: m has its leading bit at position 10 and
            // lsb = e - 10; subnormal: lsb = -24.
            let sign = if neg { 0x8000u16 } else { 0 };
            debug_assert!(m <= 1 << 11);
            let (e_field, m_field) = if m >= (1 << 10) {
                let extra = (127 - m.leading_zeros()) - 10; // carry-out shift
                let m = m >> extra;
                let e = lsb + 10 + extra as i32; // unbiased exponent
                if e > 15 {
                    return Fp16(sign | 0x7c00);
                }
                ((e + 15) as u16, (m as u16) & 0x3ff)
            } else {
                debug_assert_eq!(lsb, -24);
                (0u16, m as u16)
            };
            Fp16(sign | (e_field << 10) | m_field)
        }
    }
}

enum Rounded {
    Zero,
    Overflow(bool),
    /// `m * 2^lsb`, sign split out; `m` has at most `sig_bits + 1` bits
    /// (the +1 accommodates a rounding carry, resolved by the caller).
    Finite {
        neg: bool,
        m: u128,
        lsb: i32,
    },
}

/// Shared integer rounding core: reduce `|mag| * 2^lsb_pow2` to a
/// significand of at most `sig_bits` bits whose LSB is on the target
/// format's grid (`min_lsb` floor for subnormals), tie-to-even.
fn round_parts(mag: i128, lsb_pow2: i32, sig_bits: u32, min_lsb: i32, max_exp: i32) -> Rounded {
    if mag == 0 {
        return Rounded::Zero;
    }
    let neg = mag < 0;
    let a = mag.unsigned_abs();
    let nbits = 128 - a.leading_zeros(); // leading-one position + 1
    let msb_exp = nbits as i32 - 1 + lsb_pow2; // unbiased exp of leading bit

    // Target LSB weight: normal grid is msb_exp - (sig_bits-1); clamp at
    // the subnormal floor.
    let target_lsb = (msb_exp - (sig_bits as i32 - 1)).max(min_lsb);
    let shift = target_lsb - lsb_pow2;
    let (mut m, mut lsb) = if shift <= 0 {
        ((a) << (-shift) as u32, target_lsb)
    } else {
        let sh = shift as u32;
        if sh >= 128 {
            return Rounded::Zero;
        }
        let kept = a >> sh;
        let rem = a & ((1u128 << sh) - 1);
        let half = 1u128 << (sh - 1);
        let mut k = kept;
        if rem > half || (rem == half && (kept & 1) == 1) {
            k += 1;
        }
        (k, target_lsb)
    };
    if m == 0 {
        return Rounded::Zero;
    }
    // A carry may push m to sig_bits+1 bits; renormalize one step.
    if 128 - m.leading_zeros() > sig_bits {
        // Always a power of two after carry-out; halving is exact.
        m >>= 1;
        lsb += 1;
    }
    let msb_exp = (128 - m.leading_zeros()) as i32 - 1 + lsb;
    if msb_exp > max_exp {
        return Rounded::Overflow(neg);
    }
    Rounded::Finite { neg, m, lsb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FpFormat;

    #[test]
    fn zero_and_signs() {
        assert_eq!(round_to_f32_rne(0, 0), 0.0);
        assert_eq!(round_to_f32_rne(-5, 0), -5.0);
        assert_eq!(round_to_fp16_rne(-5, 0).to_f32(), -5.0);
    }

    #[test]
    fn exact_small_integers() {
        for v in -2048i128..=2048 {
            assert_eq!(round_to_f32_rne(v, 0), v as f32);
            assert_eq!(round_to_fp16_rne(v, 0).to_f64(), v as f64);
        }
    }

    #[test]
    fn f32_matches_native_rounding_on_wide_magnitudes() {
        // 2^24 + 1 is the first integer that rounds in f32.
        assert_eq!(round_to_f32_rne((1 << 24) + 1, 0), 16777216.0);
        assert_eq!(round_to_f32_rne((1 << 24) + 3, 0), 16777220.0);
        // Tie: 2^24 + 2 is representable; 2^25 + 2 rounds to even.
        assert_eq!(round_to_f32_rne((1 << 25) + 2, 0), 33554432.0);
        assert_eq!(round_to_f32_rne((1 << 25) + 6, 0), 33554440.0);
    }

    #[test]
    fn f32_subnormal_grid() {
        // 2^-150 is exactly half the smallest subnormal: ties to even = 0.
        assert_eq!(round_to_f32_rne(1, -150), 0.0);
        assert_eq!(round_to_f32_rne(3, -151), f32::from_bits(1)); // rounds up
        assert_eq!(round_to_f32_rne(1, -149), f32::from_bits(1));
    }

    #[test]
    fn f32_overflow() {
        assert_eq!(round_to_f32_rne(1, 128), f32::INFINITY);
        assert_eq!(round_to_f32_rne(-1, 128), f32::NEG_INFINITY);
        // f32::MAX is (2^24 - 1) * 2^104.
        assert_eq!(round_to_f32_rne((1 << 24) - 1, 104), f32::MAX);
    }

    #[test]
    fn fp16_overflow_threshold() {
        // 65504 = max FP16; 65520 is the RNE threshold to Inf.
        assert_eq!(round_to_fp16_rne(65504, 0).to_f32(), 65504.0);
        assert_eq!(round_to_fp16_rne(65519, 0).to_f32(), 65504.0);
        assert_eq!(round_to_fp16_rne(65520, 0), Fp16(0x7c00));
    }

    #[test]
    fn fp16_subnormals() {
        assert_eq!(round_to_fp16_rne(1, -24), Fp16(0x0001));
        assert_eq!(round_to_fp16_rne(1, -25), Fp16::ZERO); // tie → even(0)
        assert_eq!(round_to_fp16_rne(3, -25), Fp16(0x0002));
        // Subnormal rounding up into normal range.
        assert_eq!(
            round_to_fp16_rne((1 << 10) * 2 - 1, -25).classify(),
            crate::FpClass::Normal
        );
    }

    #[test]
    fn agrees_with_from_f64_when_exact_in_f64() {
        // For magnitudes ≤ 53 bits the fixed-point value is exact in f64,
        // so the integer path must agree with the f64 conversion path.
        let cases: &[(i128, i32)] = &[
            (123_456_789, -10),
            (-987_654_321, -20),
            ((1 << 40) + 12345, -33),
            (-(1 << 46) - 777, -30),
            (1, -24),
            (2047, 5),
        ];
        for &(m, l) in cases {
            let exact = m as f64 * (l as f64).exp2();
            assert_eq!(round_to_f32_rne(m, l), exact as f32, "({m},{l})");
            assert_eq!(
                round_to_fp16_rne(m, l).0,
                Fp16::from_f64(exact).0,
                "({m},{l})"
            );
        }
    }
}
