//! Property-based invariants for the floating-point substrate.

use mpipu_fp::{
    round_to_f32_rne, round_to_fp16_rne, Bf16, Fp16, FpClass, FpFormat, Nibbles, SignedMagnitude,
    Tf32,
};
use proptest::prelude::*;

proptest! {
    /// Every finite FP16 bit pattern survives decode → f64 → encode.
    #[test]
    fn fp16_roundtrip(bits in 0u16..=u16::MAX) {
        let x = Fp16(bits);
        prop_assume!(!x.is_non_finite());
        prop_assert_eq!(Fp16::from_f64(x.to_f64()).0, bits);
    }

    /// FP16 encode matches a double-rounding-free reference: rounding an
    /// arbitrary f32 through our encoder equals rounding via explicit
    /// nearest-candidate search on the FP16 grid.
    #[test]
    fn fp16_from_f32_is_nearest(v in prop::num::f32::NORMAL | prop::num::f32::SUBNORMAL | prop::num::f32::ZERO) {
        let enc = Fp16::from_f32(v);
        if enc.is_non_finite() {
            // Overflowed: |v| must be at least the RNE threshold 65520.
            prop_assert!(v.abs() >= 65520.0);
        } else {
            let got = enc.to_f64();
            // No other FP16 value may be strictly closer.
            let err = (got - v as f64).abs();
            for delta in [-2i32, -1, 1, 2] {
                let nb = (enc.0 as i32 + delta).clamp(0, 0x7bff) as u16;
                let cand = Fp16((nb & 0x7fff) | (enc.0 & 0x8000));
                if cand.is_non_finite() { continue; }
                let cerr = (cand.to_f64() - v as f64).abs();
                prop_assert!(cerr >= err,
                    "candidate {:?} closer to {v} than {:?}", cand, enc);
            }
        }
    }

    /// Signed-magnitude decode is exact for all finite FP16.
    #[test]
    fn signed_magnitude_exact(bits in 0u16..=u16::MAX) {
        let x = Fp16(bits);
        prop_assume!(!x.is_non_finite());
        let sm = SignedMagnitude::from_fp16(x).unwrap();
        prop_assert_eq!(sm.to_f64().to_bits(), x.to_f64().to_bits());
    }

    /// Nibble decomposition identity M = N2·2^7 + N1·2^3 + N0·2^-1 holds
    /// for every 12-bit signed magnitude.
    #[test]
    fn nibble_identity(m in -2047i32..=2047) {
        let nb = Nibbles::from_fp16_magnitude(SignedMagnitude { m, exp: 0 });
        prop_assert_eq!(nb.reconstruct(), m as i64);
    }

    /// INT nibble decomposition roundtrips for every width/signedness.
    #[test]
    fn int_nibble_roundtrip(v in -32768i32..=32767, k in 4usize..=8) {
        let nb = Nibbles::from_int(v, k, true);
        prop_assert_eq!(nb.reconstruct(), v as i64);
        if v >= 0 {
            let nb = Nibbles::from_int(v, k, false);
            prop_assert_eq!(nb.reconstruct(), v as i64);
        }
    }

    /// Fixed-point rounding to f32 agrees with native f64→f32 rounding
    /// whenever the fixed-point value is exact in f64 (≤ 53 significant
    /// bits) — which covers all realizable accumulator states.
    #[test]
    fn fixed_round_f32_matches_native(mag in -(1i128 << 52)..(1i128 << 52), lsb in -60i32..10) {
        let exact = mag as f64 * (lsb as f64).exp2();
        prop_assert_eq!(round_to_f32_rne(mag, lsb).to_bits(), (exact as f32).to_bits());
    }

    /// Same for FP16 write-back.
    #[test]
    fn fixed_round_fp16_matches_native(mag in -(1i128 << 52)..(1i128 << 52), lsb in -60i32..6) {
        let exact = mag as f64 * (lsb as f64).exp2();
        prop_assert_eq!(round_to_fp16_rne(mag, lsb).0, Fp16::from_f64(exact).0);
    }

    /// BF16 roundtrip for finite patterns.
    #[test]
    fn bf16_roundtrip(bits in 0u16..=u16::MAX) {
        let x = Bf16(bits);
        prop_assume!(!x.is_non_finite());
        prop_assert_eq!(Bf16::from_f64(x.to_f64()).0, bits);
    }

    /// TF32 roundtrip for finite patterns (19-bit storage).
    #[test]
    fn tf32_roundtrip(bits in 0u32..(1u32 << 19)) {
        let x = Tf32(bits);
        prop_assume!(!x.is_non_finite());
        prop_assert_eq!(Tf32::from_f64(x.to_f64()).0, bits);
    }

    /// Monotonicity: larger f64 inputs never encode to smaller FP16 values.
    #[test]
    fn fp16_encode_monotone(a in -70000.0f64..70000.0, b in -70000.0f64..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (el, eh) = (Fp16::from_f64(lo), Fp16::from_f64(hi));
        prop_assert!(el.to_f64() <= eh.to_f64());
    }
}

#[test]
fn classify_covers_all_five_classes() {
    let seen = [
        Fp16(0x0000).classify(),
        Fp16(0x0001).classify(),
        Fp16(0x3c00).classify(),
        Fp16(0x7c00).classify(),
        Fp16(0x7e00).classify(),
    ];
    assert_eq!(
        seen,
        [
            FpClass::Zero,
            FpClass::Subnormal,
            FpClass::Normal,
            FpClass::Infinity,
            FpClass::Nan
        ]
    );
}
