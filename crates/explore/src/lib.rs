//! # `mpipu-explore` — design-space exploration engine
//!
//! The paper's central question (§3.3, §5) is how to *size* the MC-IPU —
//! adder-tree width, tile geometry, cluster size, software precision,
//! INT/FP split — against accuracy and cycle cost. This crate turns that
//! question into a first-class query over the `mpipu::Scenario` builder:
//!
//! * [`ParamSpace`] / [`Axis`] — a typed model of the swept parameters
//!   (grid, list, log-range values per axis) with a stable [`DesignId`]
//!   per point, cartesian-product iteration, and random sampling;
//! * [`SweepEngine`] — a streaming, chunked, scoped-thread runner that
//!   lowers every point through `Scenario::run`, evaluates it on a shared
//!   `Arc<dyn CostBackend>` (memoized backends dedupe overlapping points
//!   automatically), and folds results incrementally instead of
//!   materializing the grid;
//! * [`Objective`] / [`ParetoFold`] / [`TopK`] — objective extraction
//!   over [`PointEval`]s plus an exact Pareto-frontier fold and top-k
//!   selection.
//!
//! ```
//! use mpipu::{Backend, Scenario, Zoo};
//! use mpipu_explore::{
//!     objectives, Axis, NullSweepSink, ParamSpace, ParetoFold, SweepEngine,
//! };
//!
//! let space = ParamSpace::new(
//!     Scenario::small_tile()
//!         .workload(Zoo::ResNet18)
//!         .sample_steps(64)
//!         .backend(Backend::MemoizedAnalytic),
//! )
//! .axis(Axis::w(vec![12, 16, 20, 24, 28]))
//! .axis(Axis::cluster(vec![1, 4, 8]));
//! assert_eq!(space.len(), 15);
//!
//! let front = SweepEngine::new().run(
//!     &space,
//!     ParetoFold::new(vec![objectives::FP_SLOWDOWN, objectives::INT_TOPS_PER_MM2]),
//!     &NullSweepSink,
//! );
//! assert!(!front.is_empty() && front.len() <= 15);
//! ```
//!
//! Determinism is a hard contract: the fold observes points in
//! [`DesignId`] order no matter how many worker threads evaluate chunks,
//! so every fold output is byte-stable across thread counts. See
//! `DESIGN.md` ("The exploration engine") for the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axis;
pub mod control;
pub mod engine;
pub mod events;
pub mod objective;
pub mod pareto;
pub mod search;
pub mod shard;
mod slab;
pub mod space;

pub use axis::{grid_u32, log2_range, Axis, TileChoice, WorkloadSel};
pub use control::{CancelToken, ChunkGovernor};
pub use engine::{Collect, Count, Fold, PointEval, SweepEngine};
pub use events::{FnSink, NullSweepSink, SweepEvent, SweepSink};
pub use objective::{objectives, Objective, Sense};
pub use pareto::{pareto_front, FrontierPoint, ParetoFold, TopK};
pub use search::{
    BoxSearcher, Confirmation, NeighborSearcher, RungStats, SearchConfig, SearchEngine,
    SearchOutcome, SearchState, Searcher, SurrogateSearcher, Survivor, UniformSearcher,
};
pub use shard::{partition_units, ShardMerge, UnitFold, UnitRange};
pub use space::{DesignId, DesignPointSpec, LabelTable, ParamSpace};
