//! Typed parameter axes over the `Scenario` builder's knobs.
//!
//! Each [`Axis`] names one builder setter and carries the list of values
//! it sweeps. Value lists come from explicit `Vec`s ([`Axis::w`], …),
//! linear grids ([`grid_u32`], [`Axis::w_grid`]), or log ranges
//! ([`log2_range`], [`Axis::cluster_log2`]). Axes apply to a scenario in
//! declaration order — relevant when axes interact, e.g. a
//! [`Axis::Tile`] swap resets the tile's cluster size, so declare the
//! cluster axis *after* the tile axis.

use mpipu::{Scenario, Zoo};
use mpipu_analysis::dist::Distribution;
use mpipu_dnn::zoo::{Pass, Workload};
use mpipu_sim::{LayerPrecision, Schedule, TileConfig};

/// A tile-geometry choice a [`Axis::Tile`] axis sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileChoice {
    /// The paper's small tile (8-input IPUs, `(8,8,2,2)`).
    Small,
    /// The paper's big tile (16-input IPUs, `(16,16,2,2)`).
    Big,
    /// An explicit geometry.
    Custom(TileConfig),
}

impl TileChoice {
    /// The tile configuration this choice names.
    pub fn config(&self) -> TileConfig {
        match self {
            TileChoice::Small => TileConfig::small(),
            TileChoice::Big => TileConfig::big(),
            TileChoice::Custom(t) => *t,
        }
    }

    fn label(&self) -> String {
        match self {
            TileChoice::Small => "small".to_string(),
            TileChoice::Big => "big".to_string(),
            TileChoice::Custom(t) => format!(
                "({},{},{},{})",
                t.c_unroll, t.k_unroll, t.h_unroll, t.w_unroll
            ),
        }
    }
}

/// A workload choice a [`Axis::Workload`] axis sweeps (mirrors the
/// `Scenario` builder's workload setters).
#[derive(Debug, Clone)]
pub enum WorkloadSel {
    /// A model-zoo network, resolved with the scenario's pass.
    Zoo(Zoo),
    /// A parametric synthetic stack `(channels, spatial, depth)`.
    Synthetic(usize, usize, usize),
    /// An explicit layer table (carries its own pass).
    Custom(Workload),
}

impl WorkloadSel {
    fn label(&self) -> String {
        match self {
            WorkloadSel::Zoo(Zoo::ResNet18) => "resnet18".to_string(),
            WorkloadSel::Zoo(Zoo::ResNet50) => "resnet50".to_string(),
            WorkloadSel::Zoo(Zoo::InceptionV3) => "inceptionv3".to_string(),
            WorkloadSel::Synthetic(c, s, d) => format!("synthetic-c{c}-s{s}-d{d}"),
            WorkloadSel::Custom(w) => w.label(),
        }
    }
}

/// One swept parameter: which `Scenario` knob it drives and the values
/// it takes. An axis with `n` values contributes a factor `n` to the
/// parameter space's cartesian product.
#[derive(Debug, Clone)]
pub enum Axis {
    /// MC-IPU adder-tree precision `w`.
    W(Vec<u32>),
    /// Software (accumulation) precision.
    SoftwarePrecision(Vec<u32>),
    /// Intra-tile cluster size (§3.3).
    Cluster(Vec<usize>),
    /// Per-cluster input FIFO depth.
    BufferDepth(Vec<usize>),
    /// Tiles sharing the K dimension.
    NTiles(Vec<usize>),
    /// Tile geometry / family.
    Tile(Vec<TileChoice>),
    /// The executed workload.
    Workload(Vec<WorkloadSel>),
    /// Forward/backward pass (zoo and synthetic workloads).
    Pass(Vec<Pass>),
    /// Per-layer precision schedule.
    Schedule(Vec<Schedule>),
    /// Every per-layer INT4/FP16 assignment over `layers` layers as one
    /// axis of `2^layers` values: value `m`'s bit `l` set means layer
    /// `l` runs FP16, clear means INT4. The axis that opens the paper's
    /// real schedule space (≥ 10⁸ points for a 27-layer workload) —
    /// far too wide to enumerate, which is exactly what
    /// [`crate::search::SearchEngine`] exists for.
    ScheduleMask {
        /// Number of layers the mask covers — must equal the workload's
        /// layer count (validated when a point is lowered).
        layers: u32,
    },
    /// `(activation, weight)` value-distribution override.
    Distributions(Vec<(Distribution, Distribution)>),
}

impl Axis {
    /// Sweep the adder-tree precision over an explicit list.
    pub fn w(values: Vec<u32>) -> Axis {
        Axis::W(values)
    }

    /// Sweep the adder-tree precision over the inclusive grid
    /// `lo, lo+step, …, ≤ hi`.
    pub fn w_grid(lo: u32, hi: u32, step: u32) -> Axis {
        Axis::W(grid_u32(lo, hi, step))
    }

    /// Sweep the software precision over an explicit list.
    pub fn software_precision(values: Vec<u32>) -> Axis {
        Axis::SoftwarePrecision(values)
    }

    /// Sweep the cluster size over an explicit list.
    pub fn cluster(values: Vec<usize>) -> Axis {
        Axis::Cluster(values)
    }

    /// Sweep the cluster size over powers of two `lo, 2lo, …, ≤ hi`.
    pub fn cluster_log2(lo: usize, hi: usize) -> Axis {
        Axis::Cluster(log2_range(lo, hi))
    }

    /// Sweep the input FIFO depth over an explicit list.
    pub fn buffer_depth(values: Vec<usize>) -> Axis {
        Axis::BufferDepth(values)
    }

    /// Sweep the tile count over an explicit list.
    pub fn n_tiles(values: Vec<usize>) -> Axis {
        Axis::NTiles(values)
    }

    /// Sweep the tile count over powers of two `lo, 2lo, …, ≤ hi`.
    pub fn n_tiles_log2(lo: usize, hi: usize) -> Axis {
        Axis::NTiles(log2_range(lo, hi))
    }

    /// Sweep the tile geometry.
    pub fn tile(values: Vec<TileChoice>) -> Axis {
        Axis::Tile(values)
    }

    /// Sweep the workload.
    pub fn workload(values: Vec<WorkloadSel>) -> Axis {
        Axis::Workload(values)
    }

    /// Sweep explicit layer tables (the form the paper experiments use).
    pub fn workloads(values: Vec<Workload>) -> Axis {
        Axis::Workload(values.into_iter().map(WorkloadSel::Custom).collect())
    }

    /// Sweep the pass (forward/backward).
    pub fn pass(values: Vec<Pass>) -> Axis {
        Axis::Pass(values)
    }

    /// Sweep the precision schedule.
    pub fn schedule(values: Vec<Schedule>) -> Axis {
        Axis::Schedule(values)
    }

    /// Sweep every INT4/FP16 per-layer assignment over `layers` layers
    /// (`2^layers` values — see [`Axis::ScheduleMask`]).
    ///
    /// # Panics
    /// Panics when `layers` is zero or above 48 (the mask must fit the
    /// space's u64 id with room for sibling axes).
    pub fn schedule_mask(layers: u32) -> Axis {
        assert!(
            (1..=48).contains(&layers),
            "schedule mask covers 1..=48 layers, got {layers}"
        );
        Axis::ScheduleMask { layers }
    }

    /// Sweep the `(activation, weight)` distribution override.
    pub fn distributions(values: Vec<(Distribution, Distribution)>) -> Axis {
        Axis::Distributions(values)
    }

    /// The axis's stable name (a report column header).
    pub fn name(&self) -> &'static str {
        match self {
            Axis::W(_) => "w",
            Axis::SoftwarePrecision(_) => "software_precision",
            Axis::Cluster(_) => "cluster",
            Axis::BufferDepth(_) => "buffer_depth",
            Axis::NTiles(_) => "n_tiles",
            Axis::Tile(_) => "tile",
            Axis::Workload(_) => "workload",
            Axis::Pass(_) => "pass",
            Axis::Schedule(_) => "schedule",
            Axis::ScheduleMask { .. } => "schedule_mask",
            Axis::Distributions(_) => "dists",
        }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::W(v) => v.len(),
            Axis::SoftwarePrecision(v) => v.len(),
            Axis::Cluster(v) => v.len(),
            Axis::BufferDepth(v) => v.len(),
            Axis::NTiles(v) => v.len(),
            Axis::Tile(v) => v.len(),
            Axis::Workload(v) => v.len(),
            Axis::Pass(v) => v.len(),
            Axis::Schedule(v) => v.len(),
            Axis::ScheduleMask { layers } => 1usize << layers,
            Axis::Distributions(v) => v.len(),
        }
    }

    /// Whether the axis has no values (such an axis would collapse the
    /// whole space; [`crate::ParamSpace::axis`] rejects it).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable label of value `i` (a report cell).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> String {
        match self {
            Axis::W(v) => v[i].to_string(),
            Axis::SoftwarePrecision(v) => v[i].to_string(),
            Axis::Cluster(v) => v[i].to_string(),
            Axis::BufferDepth(v) => v[i].to_string(),
            Axis::NTiles(v) => v[i].to_string(),
            Axis::Tile(v) => v[i].label(),
            Axis::Workload(v) => v[i].label(),
            Axis::Pass(v) => match v[i] {
                Pass::Forward => "fwd".to_string(),
                Pass::Backward => "bwd".to_string(),
            },
            Axis::Schedule(v) => v[i].label(),
            Axis::ScheduleMask { layers } => {
                assert!(i < 1usize << layers, "mask value out of range");
                // Fixed-width hex: one digit per 4 layers, so labels
                // sort and align across the whole axis.
                format!("m{:0width$x}", i, width = layers.div_ceil(4) as usize)
            }
            Axis::Distributions(v) => format!("{:?}/{:?}", v[i].0, v[i].1),
        }
    }

    /// Apply value `i` to a scenario chain.
    ///
    /// # Panics
    /// Panics if `i` is out of range, or if the value itself is invalid
    /// for the scenario (e.g. a cluster size that does not divide the
    /// tile's IPU count — the same contract as the builder setter).
    pub fn apply(&self, i: usize, scenario: Scenario) -> Scenario {
        match self {
            Axis::W(v) => scenario.w(v[i]),
            Axis::SoftwarePrecision(v) => scenario.software_precision(v[i]),
            Axis::Cluster(v) => scenario.cluster(v[i]),
            Axis::BufferDepth(v) => scenario.buffer_depth(v[i]),
            Axis::NTiles(v) => scenario.n_tiles(v[i]),
            Axis::Tile(v) => scenario.tile_config(v[i].config()),
            Axis::Workload(v) => match &v[i] {
                WorkloadSel::Zoo(z) => scenario.workload(*z),
                WorkloadSel::Synthetic(c, s, d) => scenario.synthetic(*c, *s, *d),
                WorkloadSel::Custom(w) => scenario.custom_workload(w.clone()),
            },
            Axis::Pass(v) => scenario.pass(v[i]),
            Axis::Schedule(v) => scenario.schedule(v[i].clone()),
            Axis::ScheduleMask { layers } => {
                assert!(i < 1usize << layers, "mask value out of range");
                let assignment: Vec<LayerPrecision> = (0..*layers)
                    .map(|l| {
                        if i >> l & 1 == 1 {
                            LayerPrecision::Fp16
                        } else {
                            LayerPrecision::Int { ka: 1, kb: 1 }
                        }
                    })
                    .collect();
                scenario.schedule(Schedule::Custom(assignment))
            }
            Axis::Distributions(v) => scenario.distributions(v[i].0, v[i].1),
        }
    }
}

/// The inclusive linear grid `lo, lo+step, …, ≤ hi`.
///
/// # Panics
/// Panics if `step == 0` or `lo > hi`.
pub fn grid_u32(lo: u32, hi: u32, step: u32) -> Vec<u32> {
    assert!(step > 0, "grid step must be positive");
    assert!(lo <= hi, "empty grid: lo {lo} > hi {hi}");
    (lo..=hi).step_by(step as usize).collect()
}

/// The log-range `lo, 2·lo, 4·lo, …, ≤ hi` (powers of two from `lo`).
///
/// # Panics
/// Panics if `lo == 0` or `lo > hi`.
pub fn log2_range(lo: usize, hi: usize) -> Vec<usize> {
    assert!(lo > 0, "log range must start above zero");
    assert!(lo <= hi, "empty log range: lo {lo} > hi {hi}");
    let mut out = Vec::new();
    let mut v = lo;
    while v <= hi {
        out.push(v);
        match v.checked_mul(2) {
            Some(next) => v = next,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_and_log_ranges() {
        assert_eq!(grid_u32(8, 16, 4), vec![8, 12, 16]);
        assert_eq!(grid_u32(8, 15, 4), vec![8, 12]);
        assert_eq!(grid_u32(8, 8, 1), vec![8]);
        assert_eq!(log2_range(1, 16), vec![1, 2, 4, 8, 16]);
        assert_eq!(log2_range(3, 20), vec![3, 6, 12]);
    }

    #[test]
    #[should_panic(expected = "grid step must be positive")]
    fn zero_step_grid_panics() {
        grid_u32(1, 2, 0);
    }

    #[test]
    fn axis_names_lengths_labels() {
        let w = Axis::w_grid(12, 28, 4);
        assert_eq!(w.name(), "w");
        assert_eq!(w.len(), 5);
        assert_eq!(w.label(0), "12");
        let tile = Axis::tile(vec![TileChoice::Small, TileChoice::Big]);
        assert_eq!(tile.label(1), "big");
        let wl = Axis::workload(vec![
            WorkloadSel::Zoo(Zoo::ResNet18),
            WorkloadSel::Synthetic(64, 14, 4),
        ]);
        assert_eq!(wl.label(0), "resnet18");
        assert_eq!(wl.label(1), "synthetic-c64-s14-d4");
        assert_eq!(
            Axis::pass(vec![Pass::Forward, Pass::Backward]).label(1),
            "bwd"
        );
    }

    #[test]
    fn schedule_mask_axis_enumerates_every_assignment() {
        let m = Axis::schedule_mask(5);
        assert_eq!(m.name(), "schedule_mask");
        assert_eq!(m.len(), 32);
        assert_eq!(m.label(0), "m00");
        assert_eq!(m.label(0b10110), "m16");
        // Bit l drives layer l: mask 0b00101 runs layers 0 and 2 FP16.
        let base = Scenario::small_tile().synthetic(8, 7, 4); // 5 layers
        let s = m.apply(0b00101, base);
        let workload = s.resolve_workload();
        let lowered = s.try_lower().unwrap();
        let sched = lowered.schedule.expect("mask installs a schedule");
        let mat = sched.try_materialize(&workload).unwrap();
        let fp: Vec<bool> = mat.iter().map(|p| *p == LayerPrecision::Fp16).collect();
        assert_eq!(fp, vec![true, false, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "schedule mask covers 1..=48 layers")]
    fn oversized_schedule_mask_is_rejected() {
        Axis::schedule_mask(49);
    }

    #[test]
    fn apply_reaches_the_design() {
        let base = Scenario::small_tile();
        let s = Axis::w(vec![14]).apply(0, base.clone());
        assert_eq!(s.design().w, 14);
        let s = Axis::cluster(vec![2]).apply(0, base.clone());
        assert_eq!(s.design().tile.cluster_size, 2);
        let s = Axis::tile(vec![TileChoice::Big]).apply(0, base.clone());
        assert!(s.design_point().big);
        let s = Axis::n_tiles(vec![7]).apply(0, base);
        assert_eq!(s.design().n_tiles, 7);
    }

    #[test]
    fn tile_axis_resets_clustering_when_applied_after() {
        // Documented ordering hazard: the tile swap carries its own
        // cluster size, so a cluster axis must come after a tile axis.
        let base = Scenario::small_tile().cluster(2);
        let s = Axis::tile(vec![TileChoice::Big]).apply(0, base);
        assert_eq!(s.design().tile.cluster_size, TileConfig::big().cluster_size);
    }
}
