//! The streaming sweep engine.
//!
//! [`SweepEngine::run`] evaluates every point of a [`ParamSpace`] (or a
//! sampled subset) across a scoped-thread worker pool and folds the
//! results incrementally through a [`Fold`] — the grid is never
//! materialized, so a million-point sweep costs the fold's state, not
//! the grid's.
//!
//! ## Determinism
//!
//! Workers pull fixed-size chunks of consecutive design ids from an
//! atomic counter and evaluate them independently; finished chunks pass
//! through a reorder buffer that folds them strictly in chunk order.
//! Every point evaluation is a deterministic function of its scenario
//! (backends are deterministic in their cache key), so the fold observes
//! an identical sequence — and produces byte-identical output — no
//! matter how many threads run the sweep. CI diffs suite results across
//! thread counts to hold this contract.
//!
//! ## Backend sharing
//!
//! [`SweepEngine::backend`] routes every point through one shared
//! `Arc<dyn CostBackend>`. With a memoized backend this is where sweep
//! dedup happens: overlapping points (same tile/w/precision/dists — and
//! for the analytic backend, any seed) collapse into cache hits, which
//! is what makes 10⁴⁺-point explorations cheap. The engine reports the
//! final counters through [`SweepEvent::BackendStats`].

use crate::control::{CancelToken, ChunkGovernor};
use crate::events::{SweepEvent, SweepSink};
use crate::space::{DesignId, LabelTable, ParamSpace};
use mpipu_hw::DesignMetrics;
use mpipu_sim::CostBackend;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One point's per-axis value indices, viewed into a slab shared by its
/// whole evaluation chunk — cloning or dropping a [`PointEval`] must not
/// touch the heap (a sweep folds millions and discards almost all).
#[derive(Debug, Clone)]
pub struct Coords {
    slab: Arc<[usize]>,
    start: usize,
    len: usize,
}

impl Coords {
    /// The coordinates as a slice, in axis declaration order.
    pub fn as_slice(&self) -> &[usize] {
        &self.slab[self.start..self.start + self.len]
    }

    /// A view of `points` consecutive coordinate rows sharing one slab
    /// (the slab fast path's layout; `slab.len() == points * axes`).
    pub(crate) fn rows(slab: Arc<[usize]>, points: usize) -> impl Iterator<Item = Coords> {
        let axes = slab.len().checked_div(points).unwrap_or(0);
        (0..points).map(move |i| Coords {
            slab: slab.clone(),
            start: i * axes,
            len: axes,
        })
    }
}

impl From<Vec<usize>> for Coords {
    fn from(v: Vec<usize>) -> Coords {
        Coords {
            len: v.len(),
            slab: v.into(),
            start: 0,
        }
    }
}

impl std::ops::Deref for Coords {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl PartialEq for Coords {
    fn eq(&self, other: &Coords) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Coords {}

/// One evaluated design point — the record folds consume. Deliberately a
/// summary (not the per-layer result): a sweep folds millions of these.
#[derive(Debug, Clone)]
pub struct PointEval {
    /// Rank in the swept space.
    pub id: DesignId,
    /// Per-axis value indices, in axis declaration order.
    pub coords: Coords,
    /// The run's shared axis-value label table (see
    /// [`ParamSpace::label_table`]); the point's own labels are
    /// `table.label(a, coords[a])` — [`PointEval::labels`] spells that
    /// out. One `Arc` clone per point instead of a materialized label
    /// vector: a sweep folds millions of these and most are discarded
    /// unread.
    pub label_table: Arc<LabelTable>,
    /// Total workload cycles.
    pub cycles: u64,
    /// Total baseline (38-bit tree) cycles.
    pub baseline_cycles: u64,
    /// `cycles / baseline_cycles` — the paper's normalized execution
    /// time (≥ 1 clamping is left to consumers).
    pub normalized: f64,
    /// FP16 share of baseline MAC work (1.0 for unscheduled scenarios).
    pub fp_fraction: f64,
    /// Area/power efficiency of the design at this slowdown.
    pub metrics: DesignMetrics,
}

impl PointEval {
    /// One axis value's label.
    pub fn label(&self, axis: usize) -> Arc<str> {
        self.label_table.label(axis, self.coords[axis])
    }

    /// The point's per-axis labels, in axis declaration order.
    pub fn labels(&self) -> impl Iterator<Item = Arc<str>> + '_ {
        self.coords
            .iter()
            .enumerate()
            .map(|(a, &c)| self.label_table.label(a, c))
    }
}

/// An incremental consumer of sweep results. The engine calls
/// [`Fold::accept`] once per point, in [`DesignId`]-sequence order, then
/// [`Fold::finish`] exactly once.
pub trait Fold {
    /// What the fold produces.
    type Output;

    /// Observe one evaluated point.
    fn accept(&mut self, eval: &PointEval);

    /// Produce the result after the last point.
    fn finish(self) -> Self::Output;
}

/// Two folds over one sweep, each observing every point (compose further
/// by nesting tuples).
impl<A: Fold, B: Fold> Fold for (A, B) {
    type Output = (A::Output, B::Output);

    fn accept(&mut self, eval: &PointEval) {
        self.0.accept(eval);
        self.1.accept(eval);
    }

    fn finish(self) -> Self::Output {
        (self.0.finish(), self.1.finish())
    }
}

/// Collects every evaluation (in fold order). For small sweeps only —
/// this is exactly the grid materialization the engine otherwise avoids.
#[derive(Debug, Default)]
pub struct Collect {
    evals: Vec<PointEval>,
}

impl Collect {
    /// An empty collector.
    pub fn new() -> Collect {
        Collect::default()
    }
}

impl Fold for Collect {
    type Output = Vec<PointEval>;

    fn accept(&mut self, eval: &PointEval) {
        self.evals.push(eval.clone());
    }

    fn finish(self) -> Self::Output {
        self.evals
    }
}

/// Counts evaluated points (the cheapest possible fold).
#[derive(Debug, Default)]
pub struct Count(u64);

impl Count {
    /// A zeroed counter.
    pub fn new() -> Count {
        Count::default()
    }
}

impl Fold for Count {
    type Output = u64;

    fn accept(&mut self, _eval: &PointEval) {
        self.0 += 1;
    }

    fn finish(self) -> Self::Output {
        self.0
    }
}

/// The streaming, chunked, scoped-thread sweep runner.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    threads: usize,
    chunk_size: usize,
    backend: Option<Arc<dyn CostBackend>>,
    cancel: Option<CancelToken>,
    governor: Option<Arc<dyn ChunkGovernor>>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

impl SweepEngine {
    /// A single-threaded engine with a 256-point chunk size and no
    /// backend override (each scenario keeps its own backend).
    pub fn new() -> SweepEngine {
        SweepEngine {
            threads: 1,
            chunk_size: 256,
            backend: None,
            cancel: None,
            governor: None,
        }
    }

    /// Set the worker-thread count (0 ⇒ one per available CPU).
    pub fn threads(mut self, n: usize) -> SweepEngine {
        self.threads = n;
        self
    }

    /// Set the chunk size (floored at 1). Chunks are the unit of work
    /// distribution *and* of progress reporting.
    pub fn chunk_size(mut self, n: usize) -> SweepEngine {
        self.chunk_size = n.max(1);
        self
    }

    /// Route every swept scenario through one shared cost backend (the
    /// sweep-dedup seam — pass a memoized backend here).
    pub fn backend(mut self, backend: Arc<dyn CostBackend>) -> SweepEngine {
        self.backend = Some(backend);
        self
    }

    /// Stop the sweep cooperatively when `token` fires (client
    /// disconnect, wall-clock budget). Workers check between chunks; a
    /// stopped sweep emits [`SweepEvent::Cancelled`] instead of
    /// [`SweepEvent::Finished`] and the fold's output covers only the
    /// contiguous prefix of chunks folded so far.
    pub fn cancel_token(mut self, token: CancelToken) -> SweepEngine {
        self.cancel = Some(token);
        self
    }

    /// Ration this sweep's chunk evaluations through a (possibly shared)
    /// governor — the fair-share seam for hosts running many sweeps on
    /// one machine. A denied permit stops the sweep like a cancellation.
    pub fn governor(mut self, governor: Arc<dyn ChunkGovernor>) -> SweepEngine {
        self.governor = Some(governor);
        self
    }

    /// Sweep the full cartesian product, folding in id order.
    ///
    /// Schedule-free spaces take the *slab* fast path: each chunk's
    /// points are gathered into one [`CostBackend::estimate_batch`]
    /// call, so a batched backend prices a whole axis-contiguous slab
    /// at once. Results are bit-identical to the scalar per-point path
    /// (which [`SweepEngine::run_ids`] always uses — the reference the
    /// property tests compare against), and the fold still observes
    /// points strictly in id order at any thread count.
    pub fn run<F: Fold + Send>(
        &self,
        space: &ParamSpace,
        fold: F,
        sink: &dyn SweepSink,
    ) -> F::Output
    where
        F::Output: Send,
    {
        if let Some(plan) = crate::slab::SlabPlan::try_new(space, self.backend.as_ref()) {
            return self.drive_chunks(
                space.len(),
                |lo, hi| plan.evaluate_chunk(lo, hi),
                fold,
                sink,
            );
        }
        self.drive(space, space.len(), DesignId, fold, sink)
    }

    /// Sweep the contiguous id range `[lo, hi)`, folding in id order —
    /// the shard work-unit path. Takes the same slab fast path as
    /// [`SweepEngine::run`] (evaluating absolute-id subranges of the
    /// plan), so a range sweep is bit-identical to the corresponding
    /// stretch of a full sweep; schedule-bearing spaces fall back to the
    /// scalar per-point path with the same contract.
    ///
    /// # Panics
    /// Panics when the range is inverted or reaches past the space.
    pub fn run_range<F: Fold + Send>(
        &self,
        space: &ParamSpace,
        lo: u64,
        hi: u64,
        fold: F,
        sink: &dyn SweepSink,
    ) -> F::Output
    where
        F::Output: Send,
    {
        assert!(lo <= hi && hi <= space.len(), "unit range out of bounds");
        if let Some(plan) = crate::slab::SlabPlan::try_new(space, self.backend.as_ref()) {
            return self.drive_chunks(
                hi - lo,
                |a, b| plan.evaluate_chunk(lo + a, lo + b),
                fold,
                sink,
            );
        }
        self.drive(space, hi - lo, |rank| DesignId(lo + rank), fold, sink)
    }

    /// Sweep an explicit id list (e.g. a filtered or externally-ordered
    /// subset), folding in list order.
    ///
    /// Always evaluates point by point — this is the scalar *reference*
    /// path the slab bit-identity property tests compare against, so it
    /// must never grow a fast path of its own. Batch-heavy callers (the
    /// guided [`crate::search::SearchEngine`]) use
    /// [`SweepEngine::run_ids_fast`] instead.
    pub fn run_ids<F: Fold + Send>(
        &self,
        space: &ParamSpace,
        ids: &[DesignId],
        fold: F,
        sink: &dyn SweepSink,
    ) -> F::Output
    where
        F::Output: Send,
    {
        self.drive(
            space,
            ids.len() as u64,
            |rank| ids[rank as usize],
            fold,
            sink,
        )
    }

    /// Sweep an explicit id list through the slab fast path when the
    /// space is slab-eligible (no schedules — see [`SweepEngine::run`]),
    /// falling back to the scalar path otherwise. Bit-identical to
    /// [`SweepEngine::run_ids`] over the same list (property-tested);
    /// the fold still observes points strictly in list order at any
    /// thread count.
    pub fn run_ids_fast<F: Fold + Send>(
        &self,
        space: &ParamSpace,
        ids: &[DesignId],
        fold: F,
        sink: &dyn SweepSink,
    ) -> F::Output
    where
        F::Output: Send,
    {
        if let Some(plan) = crate::slab::SlabPlan::try_new(space, self.backend.as_ref()) {
            return self.drive_chunks(
                ids.len() as u64,
                |lo, hi| plan.evaluate_ids(&ids[lo as usize..hi as usize]),
                fold,
                sink,
            );
        }
        self.run_ids(space, ids, fold, sink)
    }

    /// Sweep `count` distinct uniformly sampled points (seeded, without
    /// replacement — see [`ParamSpace::sample_ids`]), folding in
    /// ascending id order.
    pub fn run_sampled<F: Fold + Send>(
        &self,
        space: &ParamSpace,
        count: usize,
        seed: u64,
        fold: F,
        sink: &dyn SweepSink,
    ) -> F::Output
    where
        F::Output: Send,
    {
        self.run_ids(space, &space.sample_ids(count, seed), fold, sink)
    }

    /// Scalar (point-at-a-time) chunk evaluation.
    fn drive<F: Fold + Send>(
        &self,
        space: &ParamSpace,
        total: u64,
        id_of: impl Fn(u64) -> DesignId + Sync,
        fold: F,
        sink: &dyn SweepSink,
    ) -> F::Output
    where
        F::Output: Send,
    {
        let labels = space.label_table();
        self.drive_chunks(
            total,
            |lo, hi| {
                (lo..hi)
                    .map(|rank| self.evaluate_id(space, id_of(rank), &labels))
                    .collect()
            },
            fold,
            sink,
        )
    }

    /// The shared chunked driver: workers pull `[lo, hi)` rank ranges
    /// from an atomic counter, evaluate them through `eval_chunk`
    /// (scalar or slab), and a reorder buffer folds finished chunks
    /// strictly in chunk order — the byte-determinism contract is
    /// enforced here, independent of the evaluation strategy.
    fn drive_chunks<F: Fold + Send>(
        &self,
        total: u64,
        eval_chunk: impl Fn(u64, u64) -> Vec<PointEval> + Sync,
        fold: F,
        sink: &dyn SweepSink,
    ) -> F::Output
    where
        F::Output: Send,
    {
        let threads = effective_threads(self.threads, total, self.chunk_size);
        let chunk = self.chunk_size as u64;
        let chunks = total.div_ceil(chunk) as usize;
        sink.event(&SweepEvent::Started {
            points: total,
            chunks,
            threads,
        });
        let t0 = Instant::now();

        struct Merge<F> {
            next: usize,
            pending: BTreeMap<usize, Vec<PointEval>>,
            fold: F,
            done: u64,
        }
        let merge = Mutex::new(Merge {
            next: 0,
            pending: BTreeMap::new(),
            fold,
            done: 0,
        });
        let next_chunk = AtomicUsize::new(0);
        let aborted = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    // Cancellation and fair-share permits are consulted
                    // strictly *between* chunks: a sweep that runs to
                    // completion folds the identical sequence with or
                    // without them.
                    if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                        aborted.store(true, Ordering::Relaxed);
                        break;
                    }
                    if let Some(g) = &self.governor {
                        if !g.acquire() {
                            aborted.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        if let Some(g) = &self.governor {
                            g.release();
                        }
                        break;
                    }
                    let lo = c as u64 * chunk;
                    let hi = total.min(lo + chunk);
                    let evals = eval_chunk(lo, hi);
                    if let Some(g) = &self.governor {
                        // Release before merging: the permit rations the
                        // evaluation work, not the (cheap) fold.
                        g.release();
                    }
                    // Fold strictly in chunk order: park out-of-order
                    // chunks, drain the contiguous prefix. The buffer
                    // holds at most ~`threads` chunks.
                    let mut guard = merge.lock().expect("merge state poisoned");
                    let m = &mut *guard;
                    m.pending.insert(c, evals);
                    while let Some(ready) = m.pending.remove(&m.next) {
                        for eval in &ready {
                            m.fold.accept(eval);
                        }
                        m.done += ready.len() as u64;
                        sink.event(&SweepEvent::ChunkFinished {
                            chunk: m.next,
                            chunks,
                            points_done: m.done,
                            points: total,
                        });
                        m.next += 1;
                    }
                });
            }
        });

        if let Some(backend) = &self.backend {
            if let Some(stats) = backend.cache_stats() {
                sink.event(&SweepEvent::BackendStats {
                    backend: backend.name(),
                    inner: stats.inner,
                    hits: stats.hits,
                    misses: stats.misses,
                    entries: stats.entries,
                });
            }
        }
        let merge = merge.into_inner().expect("merge state poisoned");
        // A cancel that lands after the last chunk folded changed
        // nothing — the sweep is complete, report it as such.
        if aborted.into_inner() && merge.done < total {
            sink.event(&SweepEvent::Cancelled {
                points_done: merge.done,
                points: total,
                wall: t0.elapsed(),
            });
        } else {
            debug_assert_eq!(merge.done, total, "every chunk folded");
            sink.event(&SweepEvent::Finished {
                points: total,
                wall: t0.elapsed(),
            });
        }
        merge.fold.finish()
    }

    /// Evaluate one design point (the per-point hot path).
    pub fn evaluate(&self, space: &ParamSpace, id: DesignId) -> Option<PointEval> {
        (id.0 < space.len()).then(|| self.evaluate_id(space, id, &space.label_table()))
    }

    fn evaluate_id(&self, space: &ParamSpace, id: DesignId, labels: &Arc<LabelTable>) -> PointEval {
        let spec = space.point(id).expect("design id in range");
        let scenario = match &self.backend {
            Some(b) => spec.scenario.cost_backend(b.clone()),
            None => spec.scenario,
        };
        let r = scenario.run();
        let normalized = r.normalized();
        PointEval {
            id,
            coords: spec.coords.into(),
            label_table: labels.clone(),
            cycles: r.result.total_cycles(),
            baseline_cycles: r.result.total_baseline_cycles(),
            normalized,
            fp_fraction: r.fp_fraction,
            metrics: scenario.metrics(normalized),
        }
    }
}

fn effective_threads(requested: usize, total: u64, chunk_size: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = if requested == 0 { hw } else { requested };
    // More threads than chunks would idle immediately.
    let chunks = total.div_ceil(chunk_size.max(1) as u64);
    n.clamp(1, chunks.clamp(1, 1024) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;
    use crate::events::{FnSink, NullSweepSink};
    use mpipu::{Backend, Scenario, Zoo};

    fn space() -> ParamSpace {
        ParamSpace::new(
            Scenario::small_tile()
                .workload(Zoo::ResNet18)
                .sample_steps(16)
                .backend(Backend::Analytic),
        )
        .axis(Axis::w(vec![12, 16, 20, 24]))
        .axis(Axis::cluster(vec![1, 4]))
    }

    fn collect(engine: &SweepEngine) -> Vec<PointEval> {
        engine.run(&space(), Collect::new(), &NullSweepSink)
    }

    #[test]
    fn collect_is_in_id_order_and_complete() {
        let evals = collect(&SweepEngine::new().chunk_size(3));
        assert_eq!(evals.len(), 8);
        let ids: Vec<u64> = evals.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert!(evals.iter().all(|e| e.normalized >= 1.0));
    }

    #[test]
    fn run_range_matches_the_full_sweep_slice() {
        let space = space();
        let full = SweepEngine::new().run(&space, Collect::new(), &NullSweepSink);
        for (lo, hi) in [(0u64, 8u64), (0, 3), (3, 8), (5, 5), (2, 6)] {
            let range = SweepEngine::new().threads(2).chunk_size(2).run_range(
                &space,
                lo,
                hi,
                Collect::new(),
                &NullSweepSink,
            );
            assert_eq!(range.len(), (hi - lo) as usize);
            for (a, b) in range.iter().zip(&full[lo as usize..hi as usize]) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
                assert_eq!(
                    a.labels().collect::<Vec<_>>(),
                    b.labels().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unit range out of bounds")]
    fn run_range_rejects_out_of_bounds_ranges() {
        SweepEngine::new().run_range(&space(), 4, 9, Collect::new(), &NullSweepSink);
    }

    #[test]
    fn thread_count_does_not_change_the_folded_sequence() {
        let one = collect(&SweepEngine::new().threads(1).chunk_size(2));
        let many = collect(&SweepEngine::new().threads(8).chunk_size(2));
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
        }
    }

    #[test]
    fn chunk_events_fire_in_order_with_monotone_progress() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let sink = FnSink(|e: &SweepEvent<'_>| {
            if let SweepEvent::ChunkFinished {
                chunk, points_done, ..
            } = e
            {
                seen.lock().unwrap().push((*chunk, *points_done));
            }
        });
        SweepEngine::new()
            .threads(4)
            .chunk_size(2)
            .run(&space(), Count::new(), &sink);
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 4, "8 points / chunk 2");
        assert_eq!(
            seen,
            vec![(0, 2), (1, 4), (2, 6), (3, 8)],
            "in order, monotone"
        );
    }

    #[test]
    fn shared_memoized_backend_dedupes_and_reports_stats() {
        use std::sync::Mutex;
        let memo = Backend::MemoizedAnalytic.instantiate();
        let stats = Mutex::new(None);
        let sink = FnSink(|e: &SweepEvent<'_>| {
            if let SweepEvent::BackendStats { hits, misses, .. } = e {
                *stats.lock().unwrap() = Some((*hits, *misses));
            }
        });
        let n = SweepEngine::new()
            .backend(memo)
            .run(&space(), Count::new(), &sink);
        assert_eq!(n, 8);
        let (hits, misses) = stats.into_inner().unwrap().expect("stats event");
        // The memoized key is seed-blind, so the slab gather collapses a
        // workload's same-window layers into one query per design point
        // *before* the cache sees them: the cache records exactly one
        // miss per distinct design and no redundant layer traffic.
        assert_eq!(
            (hits, misses),
            (0, 8),
            "slab pre-dedup must leave one query per design point"
        );
    }

    #[test]
    fn sampled_sweep_is_reproducible_and_duplicate_free() {
        let engine = SweepEngine::new().threads(2).chunk_size(4);
        let a = engine.run_sampled(&space(), 5, 9, Collect::new(), &NullSweepSink);
        let b = engine.run_sampled(&space(), 5, 9, Collect::new(), &NullSweepSink);
        assert_eq!(a.len(), 5);
        assert!(
            a.windows(2).all(|w| w[0].id < w[1].id),
            "ascending, no duplicates"
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.cycles, y.cycles);
        }
        // Oversampling clamps to the whole space.
        let all = engine.run_sampled(&space(), 16, 9, Collect::new(), &NullSweepSink);
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn tuple_fold_feeds_both() {
        let (n, evals) =
            SweepEngine::new().run(&space(), (Count::new(), Collect::new()), &NullSweepSink);
        assert_eq!(n, 8);
        assert_eq!(evals.len(), 8);
    }

    #[test]
    fn slab_fast_path_matches_scalar_reference_and_reports_stats() {
        use std::sync::Mutex;
        let stats = Mutex::new(None);
        let sink = FnSink(|e: &SweepEvent<'_>| {
            if let SweepEvent::BackendStats {
                backend,
                hits,
                misses,
                ..
            } = e
            {
                *stats.lock().unwrap() = Some((backend.to_string(), *hits, *misses));
            }
        });
        let engine = SweepEngine::new()
            .backend(Backend::AnalyticBatched.instantiate())
            .chunk_size(3);
        let slab = engine.run(&space(), Collect::new(), &sink);
        let ids: Vec<DesignId> = (0..8).map(DesignId).collect();
        let scalar = engine.run_ids(&space(), &ids, Collect::new(), &NullSweepSink);
        assert_eq!(slab.len(), scalar.len());
        for (a, b) in slab.iter().zip(&scalar) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.labels().collect::<Vec<_>>(),
                b.labels().collect::<Vec<_>>()
            );
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.baseline_cycles, b.baseline_cycles);
            assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
            assert_eq!(
                a.metrics.fp_tflops_per_w.to_bits(),
                b.metrics.fp_tflops_per_w.to_bits()
            );
        }
        let (backend, hits, misses) = stats.into_inner().unwrap().expect("stats event");
        assert_eq!(backend, "analytic-batched");
        // 8 designs over 4 w values share 4 DP classes (cluster size
        // scales after the DP): every class is computed exactly once.
        assert_eq!(hits + misses, 8, "one collapsed query per point");
        assert!(
            misses < 8,
            "slab sweep must share DP classes: {hits} hits, {misses} misses"
        );
    }

    #[test]
    fn run_ids_fast_matches_the_scalar_reference_on_arbitrary_lists() {
        let space = space();
        let engine = SweepEngine::new()
            .backend(Backend::AnalyticBatched.instantiate())
            .chunk_size(3);
        // Non-contiguous, non-monotone list: the slab path must decode
        // each id rather than assume consecutive ranks.
        let ids: Vec<DesignId> = [6u64, 0, 3, 5, 1, 2].map(DesignId).to_vec();
        let fast = engine.run_ids_fast(&space, &ids, Collect::new(), &NullSweepSink);
        let scalar = engine.run_ids(&space, &ids, Collect::new(), &NullSweepSink);
        assert_eq!(fast.len(), scalar.len());
        for (a, b) in fast.iter().zip(&scalar) {
            assert_eq!(a.id, b.id);
            assert_eq!(&a.coords, &b.coords);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
            assert_eq!(
                a.metrics.fp_tflops_per_w.to_bits(),
                b.metrics.fp_tflops_per_w.to_bits()
            );
        }
    }

    #[test]
    fn scheduled_spaces_fall_back_to_the_scalar_path() {
        use mpipu_sim::Schedule;
        let space = space().axis(Axis::schedule(vec![Schedule::FirstLastFp16]));
        let evals = SweepEngine::new().run(&space, Collect::new(), &NullSweepSink);
        assert_eq!(evals.len(), 8);
        assert!(
            evals.iter().all(|e| e.fp_fraction < 1.0),
            "scheduled points must report their FP16 share"
        );
    }

    #[test]
    fn pre_cancelled_sweep_folds_nothing_and_reports_cancelled() {
        use crate::control::CancelToken;
        use std::sync::Mutex;
        let token = CancelToken::new();
        token.cancel();
        let outcome = Mutex::new(None);
        let sink = FnSink(|e: &SweepEvent<'_>| match e {
            SweepEvent::Cancelled {
                points_done,
                points,
                ..
            } => *outcome.lock().unwrap() = Some((*points_done, *points)),
            SweepEvent::Finished { .. } => panic!("cancelled sweep must not report Finished"),
            _ => {}
        });
        let n = SweepEngine::new()
            .threads(4)
            .chunk_size(2)
            .cancel_token(token)
            .run(&space(), Count::new(), &sink);
        assert_eq!(n, 0, "no chunk may be folded");
        assert_eq!(outcome.into_inner().unwrap(), Some((0, 8)));
    }

    #[test]
    fn governor_denial_stops_the_sweep_after_the_granted_chunks() {
        use crate::control::ChunkGovernor;
        use std::sync::Mutex;

        /// Grants a fixed number of permits, then denies forever.
        #[derive(Debug)]
        struct Ration(AtomicUsize);
        impl ChunkGovernor for Ration {
            fn acquire(&self) -> bool {
                self.0
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                        left.checked_sub(1)
                    })
                    .is_ok()
            }
            fn release(&self) {}
        }

        let outcome = Mutex::new(None);
        let sink = FnSink(|e: &SweepEvent<'_>| {
            if let SweepEvent::Cancelled {
                points_done,
                points,
                ..
            } = e
            {
                *outcome.lock().unwrap() = Some((*points_done, *points));
            }
        });
        // 8 points / chunk 2 = 4 chunks; one thread granted 2 permits
        // folds exactly chunks 0 and 1 before the denial stops it.
        let n = SweepEngine::new()
            .threads(1)
            .chunk_size(2)
            .governor(Arc::new(Ration(AtomicUsize::new(2))))
            .run(&space(), Count::new(), &sink);
        assert_eq!(n, 4);
        assert_eq!(outcome.into_inner().unwrap(), Some((4, 8)));
    }

    #[test]
    fn permissive_governor_and_live_token_change_nothing() {
        use crate::control::{CancelToken, ChunkGovernor};

        #[derive(Debug)]
        struct Unlimited;
        impl ChunkGovernor for Unlimited {
            fn acquire(&self) -> bool {
                true
            }
            fn release(&self) {}
        }

        let plain = collect(&SweepEngine::new().threads(4).chunk_size(2));
        let governed = collect(
            &SweepEngine::new()
                .threads(4)
                .chunk_size(2)
                .cancel_token(CancelToken::new())
                .governor(Arc::new(Unlimited)),
        );
        assert_eq!(plain.len(), governed.len());
        for (a, b) in plain.iter().zip(&governed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
        }
    }

    #[test]
    fn evaluate_single_point_matches_sweep() {
        let engine = SweepEngine::new();
        let evals = collect(&engine);
        let solo = engine.evaluate(&space(), DesignId(3)).unwrap();
        assert_eq!(solo.cycles, evals[3].cycles);
        assert!(engine.evaluate(&space(), DesignId(99)).is_none());
    }
}
