//! Objective extraction: named, directed quantities read off a
//! [`PointEval`] — the values Pareto folds and top-k selections rank by.

use crate::engine::PointEval;

/// Whether smaller or larger values of an objective are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Smaller is better (cycles, slowdown).
    Minimize,
    /// Larger is better (throughput, efficiency).
    Maximize,
}

/// A named, directed objective over sweep evaluations.
///
/// The extractor is a plain `fn` so objectives are `Copy` constants (see
/// [`objectives`]); custom objectives compose the same way:
///
/// ```
/// use mpipu_explore::{Objective, Sense};
///
/// const FP_SHARE: Objective =
///     Objective::new("fp_fraction", Sense::Minimize, |e| e.fp_fraction);
/// assert_eq!(FP_SHARE.name, "fp_fraction");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Objective {
    /// Stable name (report column header).
    pub name: &'static str,
    /// Optimization direction.
    pub sense: Sense,
    extract: fn(&PointEval) -> f64,
}

impl Objective {
    /// Define an objective.
    pub const fn new(name: &'static str, sense: Sense, extract: fn(&PointEval) -> f64) -> Self {
        Objective {
            name,
            sense,
            extract,
        }
    }

    /// The objective's raw value for one evaluation.
    pub fn value(&self, eval: &PointEval) -> f64 {
        (self.extract)(eval)
    }

    /// The value mapped so that *smaller is always better* — the form
    /// dominance checks and rankings compare.
    pub fn keyed(&self, eval: &PointEval) -> f64 {
        match self.sense {
            Sense::Minimize => self.value(eval),
            Sense::Maximize => -self.value(eval),
        }
    }

    /// Map an already-extracted original-sense value to keyed form —
    /// exactly [`Objective::keyed`] for `value == self.value(eval)`.
    /// Negation is a sign-bit flip, so re-keying a stored value (e.g. a
    /// [`crate::FrontierPoint`] crossing a shard boundary) is bit-exact.
    pub fn key_of(&self, value: f64) -> f64 {
        match self.sense {
            Sense::Minimize => value,
            Sense::Maximize => -value,
        }
    }
}

/// The builtin objective catalog over [`PointEval`] fields.
pub mod objectives {
    use super::{Objective, Sense};

    /// Total workload cycles (smaller is better).
    pub const CYCLES: Objective = Objective::new("cycles", Sense::Minimize, |e| e.cycles as f64);

    /// Execution time normalized to the 38-bit-tree baseline — the
    /// paper's FP-slowdown quantity (smaller is better).
    pub const FP_SLOWDOWN: Objective =
        Objective::new("fp_slowdown", Sense::Minimize, |e| e.normalized);

    /// FP16 share of baseline MAC work (smaller means more quantized).
    pub const FP_FRACTION: Objective =
        Objective::new("fp_fraction", Sense::Minimize, |e| e.fp_fraction);

    /// Peak INT4 throughput density, TOPS/mm² (larger is better).
    pub const INT_TOPS_PER_MM2: Objective =
        Objective::new("int_tops_per_mm2", Sense::Maximize, |e| {
            e.metrics.int_tops_per_mm2
        });

    /// Peak INT4 power efficiency, TOPS/W (larger is better).
    pub const INT_TOPS_PER_W: Objective = Objective::new("int_tops_per_w", Sense::Maximize, |e| {
        e.metrics.int_tops_per_w
    });

    /// Effective FP16 throughput density, TFLOPS/mm² (larger is better).
    pub const FP_TFLOPS_PER_MM2: Objective =
        Objective::new("fp_tflops_per_mm2", Sense::Maximize, |e| {
            e.metrics.fp_tflops_per_mm2
        });

    /// Effective FP16 power efficiency, TFLOPS/W (larger is better).
    pub const FP_TFLOPS_PER_W: Objective =
        Objective::new("fp_tflops_per_w", Sense::Maximize, |e| {
            e.metrics.fp_tflops_per_w
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignId;
    use mpipu_hw::DesignMetrics;

    fn eval(normalized: f64, tops: f64) -> PointEval {
        PointEval {
            id: DesignId(0),
            coords: Vec::new().into(),
            label_table: std::sync::Arc::new(vec![].into()),
            cycles: 100,
            baseline_cycles: 80,
            normalized,
            fp_fraction: 1.0,
            metrics: DesignMetrics {
                int_tops_per_mm2: tops,
                int_tops_per_w: 1.0,
                fp_tflops_per_mm2: 2.0,
                fp_tflops_per_w: 3.0,
            },
        }
    }

    #[test]
    fn keyed_flips_maximize_only() {
        let e = eval(1.5, 30.0);
        assert_eq!(objectives::FP_SLOWDOWN.value(&e), 1.5);
        assert_eq!(objectives::FP_SLOWDOWN.keyed(&e), 1.5);
        assert_eq!(objectives::INT_TOPS_PER_MM2.value(&e), 30.0);
        assert_eq!(objectives::INT_TOPS_PER_MM2.keyed(&e), -30.0);
        assert_eq!(objectives::CYCLES.value(&e), 100.0);
    }
}
