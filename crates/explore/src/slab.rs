//! The sweep engine's slab fast path: evaluate an axis-contiguous chunk
//! of a [`ParamSpace`] as one batched backend call.
//!
//! [`SlabPlan::try_new`] checks that a space is slab-eligible (no
//! precision schedules — scheduled points mix INT and FP layers and keep
//! the scalar path) and hoists everything rank-independent: per-axis
//! label tables, the shared cost backend, and whether that backend is
//! *seed-blind* (its [`CostQuery`] cache key ignores the sampling seed,
//! as the analytic backends' do — probed through the public
//! `cache_key` contract, never by downcasting).
//!
//! [`SlabPlan::evaluate_chunk`] then walks one chunk of consecutive
//! design ids with a mixed-radix odometer — reapplying only the axes
//! whose coordinate changed, via the same [`Axis::apply`] the scalar
//! path uses — and splits evaluation into three passes:
//!
//! 1. **Gather** — resolve each point's workload/geometry to a cached
//!    [`LayerTable`] (per-layer step counts, sampling windows, seeds,
//!    and the baseline total, exactly as the scalar simulator derives
//!    them) and append its cost queries to one slab. For seed-blind
//!    backends, layers sharing a sampling window collapse into a single
//!    query per point.
//! 2. **Estimate** — a single [`CostBackend::estimate_batch`] call over
//!    the whole chunk's slab.
//! 3. **Scatter** — rebuild every [`PointEval`] with the scalar path's
//!    exact arithmetic: per-layer `(window_cycles · steps / sampled)`
//!    rounding in the same op order, u64 totals in layer order, and
//!    metrics through the hoisted [`MetricsFactors`].
//!
//! Bit-identity with [`SweepEngine::run_ids`]'s scalar evaluation is the
//! contract (property-tested in `tests/proptests.rs`); the slab path
//! changes how often shared math runs, never the math itself.

use crate::axis::Axis;
use crate::engine::PointEval;
use crate::space::{DesignId, LabelTable, ParamSpace};
use mpipu::Scenario;
use mpipu_analysis::dist::Distribution;
use mpipu_dnn::zoo::Workload;
use mpipu_hw::MetricsFactors;
use mpipu_sim::cost::pass_distributions;
use mpipu_sim::{
    layer_steps, CostBackend, CostQuery, SimDesign, SimOptions, BASELINE_CYCLES_PER_STEP,
};
use std::collections::HashMap;
use std::sync::Arc;

/// One scatter-pass memo slot: `(table index, qbase cycle bits)` key
/// mapped to the `(total cycles, normalized)` it produced.
type TotalsMemoSlot = Option<(usize, u64, (u64, f64))>;

/// Everything rank-independent about one slab-evaluated sweep.
pub(crate) struct SlabPlan<'s> {
    space: &'s ParamSpace,
    backend: Arc<dyn CostBackend>,
    /// Whether the backend's cache key ignores the seed — the license to
    /// collapse same-window queries within a point.
    seed_blind: bool,
    /// The space's label table, shared into every [`PointEval`].
    labels: Arc<LabelTable>,
    /// Axes whose coordinate changes the resolved workload
    /// ([`Axis::Workload`] / [`Axis::Pass`]).
    wl_axes: Vec<usize>,
    opts: SimOptions,
}

impl<'s> SlabPlan<'s> {
    /// Plan a slab sweep, or `None` when the space needs the scalar
    /// path (a schedule anywhere, or an invalid base scenario).
    pub(crate) fn try_new(
        space: &'s ParamSpace,
        override_backend: Option<&Arc<dyn CostBackend>>,
    ) -> Option<SlabPlan<'s>> {
        if space
            .axes()
            .iter()
            .any(|a| matches!(a, Axis::Schedule(_) | Axis::ScheduleMask { .. }))
        {
            return None;
        }
        let lowered = space.base().try_lower().ok()?;
        if lowered.schedule.is_some() {
            return None;
        }
        let backend = override_backend
            .cloned()
            .unwrap_or_else(|| lowered.backend.clone());
        let probe = CostQuery {
            tile: lowered.design.tile,
            w: lowered.design.w,
            software_precision: lowered.design.software_precision,
            dists: lowered
                .dists
                .unwrap_or_else(|| pass_distributions(mpipu_dnn::zoo::Pass::Forward)),
            window: 1,
            seed: 0,
        };
        let seed_blind =
            backend.cache_key(&probe) == backend.cache_key(&CostQuery { seed: 1, ..probe });
        let labels = space.label_table();
        let wl_axes = space
            .axes()
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, Axis::Workload(_) | Axis::Pass(_)))
            .map(|(i, _)| i)
            .collect();
        Some(SlabPlan {
            space,
            backend,
            seed_blind,
            labels,
            wl_axes,
            opts: lowered.opts,
        })
    }

    /// Evaluate design ids `lo..hi` (the engine's chunk unit) through
    /// the three-pass slab pipeline.
    pub(crate) fn evaluate_chunk(&self, lo: u64, hi: u64) -> Vec<PointEval> {
        let ids: Vec<DesignId> = (lo..hi).map(DesignId).collect();
        Worker::new(self).ids(&ids)
    }

    /// Evaluate an explicit id list (in list order) through the same
    /// three-pass pipeline — the [`crate::SweepEngine::run_ids_fast`]
    /// chunk unit. Consecutive ids cost exactly what a contiguous chunk
    /// does (the diff-based walk degenerates to the odometer); arbitrary
    /// jumps just reapply a wider axis suffix.
    pub(crate) fn evaluate_ids(&self, ids: &[DesignId]) -> Vec<PointEval> {
        Worker::new(self).ids(ids)
    }
}

/// One layer's slab bookkeeping: which query slot prices it and the
/// scalar path's exact scaling constants.
struct SlabLayer {
    /// Index into the owning [`LayerTable`]'s query slots.
    slot: usize,
    steps_f: f64,
    sampled_f: f64,
    /// Layer multiplicity, pre-widened for the u64 total.
    weight: u64,
}

/// Per-(workload, tile geometry, n_tiles) evaluation skeleton — every
/// design-point quantity that does not depend on `w`, precision,
/// clustering, buffering, or distributions.
struct LayerTable {
    layers: Vec<SlabLayer>,
    /// Distinct query slots as `(window, seed)`. Seed-blind backends
    /// share one slot per distinct window; seed-sensitive backends get
    /// one slot per layer, reproducing the scalar query stream exactly.
    slots: Vec<(usize, u64)>,
    total_baseline: u64,
}

impl LayerTable {
    fn build(
        design: &SimDesign,
        workload: &Workload,
        opts: &SimOptions,
        seed_blind: bool,
    ) -> LayerTable {
        let mut layers = Vec::with_capacity(workload.layers.len());
        let mut slots: Vec<(usize, u64)> = Vec::new();
        let mut total_baseline = 0u64;
        for (li, &(shape, multiplicity)) in workload.layers.iter().enumerate() {
            let steps = layer_steps(design, &shape);
            let sampled = (steps as usize).min(opts.sample_steps).max(1);
            let seed = opts.seed ^ (li as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let slot = if seed_blind {
                match slots.iter().position(|&(w, _)| w == sampled) {
                    Some(s) => s,
                    None => {
                        slots.push((sampled, seed));
                        slots.len() - 1
                    }
                }
            } else {
                slots.push((sampled, seed));
                slots.len() - 1
            };
            layers.push(SlabLayer {
                slot,
                steps_f: steps as f64,
                sampled_f: sampled as f64,
                weight: multiplicity as u64,
            });
            total_baseline += steps * u64::from(BASELINE_CYCLES_PER_STEP) * multiplicity as u64;
        }
        LayerTable {
            layers,
            slots,
            total_baseline,
        }
    }
}

/// One point's fully-derived evaluation inputs — reused verbatim when a
/// step only moves an axis that cannot change them.
#[derive(Clone, Copy)]
struct Derived {
    design: SimDesign,
    table: usize,
    factors: MetricsFactors,
    dists: (Distribution, Distribution),
}

/// A gathered-but-not-yet-priced design point (its coordinates live in
/// the chunk's shared coordinate slab).
struct Pending {
    table: usize,
    factors: MetricsFactors,
    /// This point's first query in the chunk slab.
    qbase: usize,
}

/// Per-chunk evaluator: the odometer plus value caches. Fresh per chunk
/// (caches refill from a handful of axis values; the expensive math
/// lives behind the shared backend's own caches).
struct Worker<'p, 's> {
    plan: &'p SlabPlan<'s>,
    workloads: Vec<(Vec<usize>, Arc<Workload>)>,
    tables: Vec<((usize, [usize; 5]), LayerTable)>,
    factors: HashMap<(u32, usize, bool), MetricsFactors>,
}

impl<'p, 's> Worker<'p, 's> {
    fn new(plan: &'p SlabPlan<'s>) -> Worker<'p, 's> {
        Worker {
            plan,
            workloads: Vec::new(),
            tables: Vec::new(),
            factors: HashMap::new(),
        }
    }

    fn workload_id(&mut self, coords: &[usize], scenario: &Scenario) -> usize {
        if self.plan.wl_axes.is_empty() {
            // No workload/pass axes: every point shares one workload.
            if self.workloads.is_empty() {
                self.workloads
                    .push((Vec::new(), Arc::new(scenario.resolve_workload())));
            }
            return 0;
        }
        let key: Vec<usize> = self.plan.wl_axes.iter().map(|&i| coords[i]).collect();
        match self.workloads.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                self.workloads
                    .push((key, Arc::new(scenario.resolve_workload())));
                self.workloads.len() - 1
            }
        }
    }

    fn table_id(&mut self, wid: usize, design: &SimDesign) -> usize {
        let key = (
            wid,
            [
                design.tile.c_unroll,
                design.tile.k_unroll,
                design.tile.h_unroll,
                design.tile.w_unroll,
                design.n_tiles,
            ],
        );
        match self.tables.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                let table = LayerTable::build(
                    design,
                    &self.workloads[wid].1,
                    &self.plan.opts,
                    self.plan.seed_blind,
                );
                self.tables.push((key, table));
                self.tables.len() - 1
            }
        }
    }

    fn ids(mut self, ids: &[DesignId]) -> Vec<PointEval> {
        let plan = self.plan;
        let axes = plan.space.axes();
        let n = axes.len();
        let Some(&first) = ids.first() else {
            return Vec::new();
        };
        let mut coords = plan.space.coords(first).expect("slab id in range");
        // Scratch row for the next id's decoded coordinates (diffed
        // against `coords` to find the leftmost changed axis — for
        // consecutive ids this reproduces the mixed-radix odometer's
        // carry position exactly).
        let mut next = vec![0usize; n];

        // Axes whose values touch exactly one field of the derived
        // evaluation inputs: a distribution override swaps `dists`, a
        // buffer-depth move rewrites `tile.buffer_depth` (`layer_steps`,
        // the table key, and the metrics factors are all blind to both).
        // For the contiguous *tail* of such axes, every point patches
        // the value onto `Derived` directly — writing the very value
        // `Axis::apply` would have pushed through the scenario — so the
        // odometer never has to apply or reapply a fast-tail axis.
        enum FastAxis<'a> {
            Dists(&'a [(Distribution, Distribution)]),
            Buffer(&'a [usize]),
        }
        let mut fast_lo = n;
        let mut fast_tail: Vec<FastAxis<'_>> = Vec::new();
        while fast_lo > 0 {
            match &axes[fast_lo - 1] {
                Axis::Distributions(v) => fast_tail.push(FastAxis::Dists(v)),
                Axis::BufferDepth(v) => fast_tail.push(FastAxis::Buffer(v)),
                _ => break,
            }
            fast_lo -= 1;
        }
        fast_tail.reverse(); // fast_tail[i - fast_lo] pairs with axes[i]

        // states[i] = base with axes[..i] applied — the odometer only
        // rebuilds the suffix whose coordinates changed, and the fast
        // tail never enters the scenario at all.
        let mut states: Vec<Scenario> = Vec::with_capacity(fast_lo + 1);
        states.push(plan.space.base().clone());
        for i in 0..fast_lo {
            let next = axes[i].apply(coords[i], states[i].clone());
            states.push(next);
        }

        // Pass 1 — gather. No per-point `try_lower`: the plan already
        // proved the space schedule-free, and no axis can touch the
        // sampling options, so `Scenario::design` plus the distribution
        // override is the whole lowering.
        // Seed-blind single-window points gather one query each, so the
        // chunk's point count is almost always the exact slab length.
        let mut queries: Vec<CostQuery> = Vec::with_capacity(ids.len());
        let mut pending: Vec<Pending> = Vec::with_capacity(ids.len());
        // All points' coordinates, row-major in one slab the chunk's
        // `PointEval`s share — no per-point coordinate allocation.
        let mut coord_slab: Vec<usize> = Vec::with_capacity(ids.len() * n);
        let mut derived: Option<Derived> = None;
        let mut last_table: Option<((usize, [usize; 5]), usize)> = None;
        let mut last_factors: Option<((u32, usize, bool), MetricsFactors)> = None;
        // First axis whose coordinate changed since the previous point
        // (everything, for the chunk's first point).
        let mut changed = 0usize;
        for k in 0..ids.len() {
            let d = match derived {
                Some(mut d) if changed >= fast_lo => {
                    for i in changed..n {
                        match fast_tail[i - fast_lo] {
                            FastAxis::Dists(v) => d.dists = v[coords[i]],
                            FastAxis::Buffer(v) => d.design.tile.buffer_depth = v[coords[i]],
                        }
                    }
                    derived = Some(d);
                    d
                }
                _ => {
                    let scenario = &states[fast_lo];
                    let design = scenario.design();
                    let wid = self.workload_id(&coords, scenario);
                    let dists: (Distribution, Distribution) = scenario
                        .distribution_override()
                        .unwrap_or_else(|| pass_distributions(self.workloads[wid].1.pass));
                    let tkey = (
                        wid,
                        [
                            design.tile.c_unroll,
                            design.tile.k_unroll,
                            design.tile.h_unroll,
                            design.tile.w_unroll,
                            design.n_tiles,
                        ],
                    );
                    let table = match last_table {
                        Some((k, t)) if k == tkey => t,
                        _ => {
                            let t = self.table_id(wid, &design);
                            last_table = Some((tkey, t));
                            t
                        }
                    };
                    let dp = scenario.design_point();
                    let fkey = (dp.w, dp.cluster_size, dp.big);
                    let factors = match last_factors {
                        Some((k, f)) if k == fkey => f,
                        _ => {
                            let f = *self
                                .factors
                                .entry(fkey)
                                .or_insert_with(|| dp.metrics_factors());
                            last_factors = Some((fkey, f));
                            f
                        }
                    };
                    let mut d = Derived {
                        design,
                        table,
                        factors,
                        dists,
                    };
                    // `states` stops at `fast_lo`: stamp the fast-tail
                    // axes' current values the same way a fast step does.
                    for i in fast_lo..n {
                        match fast_tail[i - fast_lo] {
                            FastAxis::Dists(v) => d.dists = v[coords[i]],
                            FastAxis::Buffer(v) => d.design.tile.buffer_depth = v[coords[i]],
                        }
                    }
                    derived = Some(d);
                    d
                }
            };
            let qbase = queries.len();
            for &(window, seed) in &self.tables[d.table].1.slots {
                queries.push(CostQuery {
                    tile: d.design.tile,
                    w: d.design.w,
                    software_precision: d.design.software_precision,
                    dists: d.dists,
                    window,
                    seed,
                });
            }
            coord_slab.extend_from_slice(&coords);
            pending.push(Pending {
                table: d.table,
                factors: d.factors,
                qbase,
            });

            if k + 1 < ids.len() {
                // Step to the next id: decode it, find the leftmost
                // changed axis, and reapply only that suffix. A move
                // within the fast tail skips the reapply entirely: the
                // next point patches `Derived` instead of reading
                // `states[n]`, and any later wider step rebuilds the
                // stale suffix from the still-valid prefix. (A repeated
                // id diffs to `changed == n` and reuses `Derived`
                // untouched.)
                let mut rank = ids[k + 1].0;
                debug_assert!(rank < plan.space.len(), "slab id in range");
                for (slot, axis) in next.iter_mut().zip(axes).rev() {
                    let radix = axis.len() as u64;
                    *slot = (rank % radix) as usize;
                    rank /= radix;
                }
                let j = coords
                    .iter()
                    .zip(&next)
                    .position(|(a, b)| a != b)
                    .unwrap_or(n);
                coords.copy_from_slice(&next);
                changed = j;
                if j < fast_lo {
                    for i in j..fast_lo {
                        states[i + 1] = axes[i].apply(coords[i], states[i].clone());
                    }
                }
            }
        }

        // Pass 2 — one batched estimate for the whole chunk.
        let mut cycles = vec![0.0f64; queries.len()];
        plan.backend.estimate_batch(&queries, &mut cycles);

        // Pass 3 — scatter back into PointEvals with the scalar
        // arithmetic, op for op. The layer total is a pure function of
        // (table, per-slot cycles); buffer-depth and n-tiles moves leave
        // the cycles untouched, so the query stream revisits the same
        // few inputs back to back — a two-deep memo (the stream
        // alternates fwd/bwd distributions) skips the layer loop for
        // all but the first sighting of each value.
        let mut totals: [TotalsMemoSlot; 2] = [None, None];
        let points = pending.len();
        let coord_rows = crate::engine::Coords::rows(coord_slab.into(), points);
        pending
            .into_iter()
            .zip(coord_rows)
            .enumerate()
            .map(|(i, (p, coords))| {
                let table = &self.tables[p.table].1;
                let key = (p.table, cycles[p.qbase].to_bits());
                let memoable = table.slots.len() == 1;
                let hit = if !memoable {
                    None
                } else if matches!(totals[0], Some((t, b, _)) if (t, b) == key) {
                    totals[0].map(|(_, _, r)| r)
                } else if matches!(totals[1], Some((t, b, _)) if (t, b) == key) {
                    totals.swap(0, 1);
                    totals[0].map(|(_, _, r)| r)
                } else {
                    None
                };
                let (total, normalized) = hit.unwrap_or_else(|| {
                    let mut total = 0u64;
                    for l in &table.layers {
                        let window_cycles = cycles[p.qbase + l.slot];
                        // Scale the estimation window to the layer's true
                        // step count — identical op order to the scalar
                        // simulator, then the same u64 multiplicity total.
                        let layer_cycles = (window_cycles * l.steps_f / l.sampled_f).round() as u64;
                        total += layer_cycles * l.weight;
                    }
                    let normalized = total as f64 / table.total_baseline.max(1) as f64;
                    if memoable {
                        totals.swap(0, 1);
                        totals[0] = Some((key.0, key.1, (total, normalized)));
                    }
                    (total, normalized)
                });
                PointEval {
                    id: ids[i],
                    coords,
                    label_table: plan.labels.clone(),
                    cycles: total,
                    baseline_cycles: table.total_baseline,
                    normalized,
                    fp_fraction: 1.0,
                    metrics: p.factors.at(normalized.max(1.0)),
                }
            })
            .collect()
    }
}
