//! Cooperative cancellation and cross-sweep scheduling hooks.
//!
//! A long-running host (the `mpipu-serve` daemon) needs two controls the
//! engine alone cannot provide: stopping a sweep early when its client
//! goes away (or its wall-clock budget expires), and rationing the
//! worker pool across *concurrent* sweeps so one large request cannot
//! starve the rest. Both hooks are deliberately cooperative and
//! chunk-grained: workers consult them between chunks, never mid-point,
//! so the fold-order determinism contract is untouched — a sweep that
//! runs to completion produces byte-identical output with or without
//! them.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, clonable cancellation flag with an optional deadline.
///
/// Clones observe the same flag: any holder may [`CancelToken::cancel`],
/// and every holder's [`CancelToken::is_cancelled`] flips together. A
/// deadline (per-request wall-clock budget) latches into the flag the
/// first time it is observed expired, so late checks stay cheap.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that auto-cancels once `deadline` passes (checked lazily,
    /// whenever [`CancelToken::is_cancelled`] is called).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// A clone of this token that additionally auto-cancels at
    /// `deadline`. The flag stays shared — an explicit cancel on either
    /// token (e.g. a client disconnect) is visible to both; only the
    /// derived token watches the clock.
    pub fn deadline_at(&self, deadline: Instant) -> CancelToken {
        CancelToken {
            flag: self.flag.clone(),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested or the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch the expiry so subsequent checks skip the clock.
                self.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Rations chunk evaluations across concurrent sweeps.
///
/// Engine workers call [`ChunkGovernor::acquire`] before evaluating each
/// chunk and [`ChunkGovernor::release`] right after; a governor shared
/// by several running sweeps can thereby bound each sweep's share of a
/// common thread pool (fair-share scheduling). `acquire` may block;
/// returning `false` stops the calling worker — the sweep ends early and
/// reports [`crate::SweepEvent::Cancelled`]. Implementations that block
/// should poll their sweep's [`CancelToken`] (e.g. with a
/// `Condvar::wait_timeout` loop) so a cancelled sweep cannot wedge in
/// `acquire`.
pub trait ChunkGovernor: Send + Sync + fmt::Debug {
    /// Block until this sweep may evaluate one more chunk; `false` tells
    /// the worker to stop instead.
    fn acquire(&self) -> bool;

    /// Return the permit taken by [`ChunkGovernor::acquire`].
    fn release(&self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_starts_clear_and_latches_on_cancel() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled(), "clones share one flag");
    }

    #[test]
    fn past_deadline_cancels_future_deadline_does_not() {
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        assert!(expired.is_cancelled(), "expiry latches");
        let live = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!live.is_cancelled());
        live.cancel();
        assert!(live.is_cancelled(), "explicit cancel beats the deadline");
    }

    #[test]
    fn derived_deadline_token_shares_the_flag() {
        let base = CancelToken::new();
        let expired = base.deadline_at(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled(), "derived deadline applies");
        assert!(
            base.is_cancelled(),
            "expiry latches into the shared flag, visible to the base token"
        );

        let base = CancelToken::new();
        let timed = base.deadline_at(Instant::now() + Duration::from_secs(3600));
        assert!(!timed.is_cancelled());
        base.cancel();
        assert!(
            timed.is_cancelled(),
            "base cancel reaches the derived token"
        );
    }
}
