//! Sharding primitives: `DesignId`-range work units and the exact
//! shard-merge.
//!
//! A sharded sweep splits a [`crate::ParamSpace`] into contiguous
//! id-range **units** ([`partition_units`]), evaluates each unit
//! independently (any process, any order — see
//! [`crate::SweepEngine::run_range`]), and merges the per-unit
//! [`ParetoFold`]/[`TopK`] outputs back into the single-sweep result.
//! [`ShardMerge`] is that merge: a reorder buffer that absorbs unit
//! results strictly in ascending unit order, so the merged output is
//! byte-identical to one in-process fold regardless of worker count,
//! completion order, or which units were replayed from a journal.
//!
//! Exactness rests on two properties the proptests pin down:
//!
//! * **Pareto**: dominance is transitive and exact duplicates collapse
//!   to the first point folded, so a unit's *finished frontier* carries
//!   everything the global fold needs from that unit — absorbing
//!   frontiers in id order equals folding every raw point in id order.
//! * **Top-k**: the final selection is the k smallest `(keyed, id)`
//!   pairs, and every globally selected point survives its own unit's
//!   top-k, so merging per-unit selections loses nothing.

use crate::pareto::{FrontierPoint, ParetoFold, TopK};
use std::collections::BTreeMap;

/// One contiguous stretch of design ids, `[lo, hi)` — the unit of work
/// distribution, journaling, and resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitRange {
    /// Rank in the canonical (ascending-id) unit order.
    pub index: usize,
    /// First design id in the unit.
    pub lo: u64,
    /// One past the last design id.
    pub hi: u64,
}

impl UnitRange {
    /// Points in the unit.
    pub fn points(&self) -> u64 {
        self.hi - self.lo
    }
}

/// Split `total` design points into units of `unit_points` ids each
/// (the last unit takes the remainder). `unit_points` is floored at 1.
pub fn partition_units(total: u64, unit_points: u64) -> Vec<UnitRange> {
    let step = unit_points.max(1);
    (0..total.div_ceil(step))
        .map(|i| UnitRange {
            index: i as usize,
            lo: i * step,
            hi: total.min((i + 1) * step),
        })
        .collect()
}

/// One unit's fold output: its finished Pareto frontier and (when the
/// sweep selects one) its finished top-k.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitFold {
    /// The unit's Pareto frontier, sorted by id (a [`ParetoFold`]
    /// `finish` output).
    pub front: Vec<FrontierPoint>,
    /// The unit's top-k selection, best first (a [`TopK`] `finish`
    /// output); `None` when the sweep has no top-k.
    pub top: Option<Vec<FrontierPoint>>,
}

/// The exact shard-merge: absorbs [`UnitFold`]s in any arrival order,
/// folding them strictly in canonical unit order through a reorder
/// buffer (the same trick the engine's chunk merge uses, one level up).
#[derive(Debug)]
pub struct ShardMerge {
    pareto: ParetoFold,
    top: Option<TopK>,
    next: usize,
    pending: BTreeMap<usize, UnitFold>,
    merged: usize,
}

impl ShardMerge {
    /// A merge producing the same output as folding every point through
    /// `pareto` (and `top`, when given) in id order.
    pub fn new(pareto: ParetoFold, top: Option<TopK>) -> ShardMerge {
        ShardMerge {
            pareto,
            top,
            next: 0,
            pending: BTreeMap::new(),
            merged: 0,
        }
    }

    /// Offer one unit's fold output (idempotent per index: a duplicate
    /// offer for an already-merged or already-pending unit is ignored —
    /// first completion wins). Out-of-order offers park in the reorder
    /// buffer until the canonical prefix is contiguous.
    pub fn offer(&mut self, index: usize, fold: UnitFold) {
        if index < self.next || self.pending.contains_key(&index) {
            return;
        }
        self.pending.insert(index, fold);
        while let Some(ready) = self.pending.remove(&self.next) {
            for p in &ready.front {
                self.pareto.absorb(p);
            }
            if let (Some(top), Some(points)) = (self.top.as_mut(), ready.top.as_ref()) {
                for p in points {
                    top.absorb(p);
                }
            }
            self.next += 1;
            self.merged += 1;
        }
    }

    /// Units merged into the folds so far (the contiguous prefix).
    pub fn merged(&self) -> usize {
        self.merged
    }

    /// Current merged-prefix frontier size (progress reporting).
    pub fn front_len(&self) -> usize {
        self.pareto.front_len()
    }

    /// Finish the folds.
    ///
    /// # Panics
    /// Panics when offered units are still parked out of order — the
    /// caller failed to deliver a contiguous unit sequence.
    pub fn finish(self) -> (Vec<FrontierPoint>, Option<Vec<FrontierPoint>>) {
        assert!(
            self.pending.is_empty(),
            "shard merge finished with {} unit(s) parked out of order",
            self.pending.len()
        );
        use crate::engine::Fold;
        (self.pareto.finish(), self.top.map(TopK::finish))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_the_space_exactly() {
        let units = partition_units(10, 4);
        assert_eq!(units.len(), 3);
        assert_eq!(
            units
                .iter()
                .map(|u| (u.index, u.lo, u.hi))
                .collect::<Vec<_>>(),
            vec![(0, 0, 4), (1, 4, 8), (2, 8, 10)]
        );
        assert_eq!(units.iter().map(UnitRange::points).sum::<u64>(), 10);
        assert_eq!(partition_units(0, 4), Vec::new());
        assert_eq!(partition_units(3, 0).len(), 3, "unit size floored at 1");
        let one = partition_units(5, 100);
        assert_eq!(one.len(), 1);
        assert_eq!((one[0].lo, one[0].hi), (0, 5));
    }

    #[test]
    fn merge_reorders_and_dedupes_offers() {
        use crate::objective::objectives;
        let unit = |id: u64, slowdown: f64| UnitFold {
            front: vec![FrontierPoint {
                id: crate::DesignId(id),
                labels: vec![],
                values: vec![slowdown],
            }],
            top: None,
        };
        let mut m = ShardMerge::new(ParetoFold::new(vec![objectives::FP_SLOWDOWN]), None);
        m.offer(2, unit(20, 3.0));
        assert_eq!(m.merged(), 0, "parked until the prefix is contiguous");
        m.offer(0, unit(0, 1.0));
        assert_eq!(m.merged(), 1);
        m.offer(1, unit(10, 2.0));
        assert_eq!(m.merged(), 3);
        m.offer(1, unit(11, 0.1)); // duplicate completion: ignored
        let (front, top) = m.finish();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].id, crate::DesignId(0));
        assert!(top.is_none());
    }
}
