//! [`ParamSpace`]: a base scenario plus typed axes, with a stable
//! [`DesignId`] per cartesian-product point.
//!
//! The id is the point's mixed-radix rank with the *first* declared axis
//! most significant (row-major: the last axis varies fastest), so ids are
//! stable properties of the declared space — independent of iteration
//! order, thread scheduling, and sampling. Folding sweep results in id
//! order is what makes every engine output byte-deterministic.

use crate::axis::Axis;
use mpipu::Scenario;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Largest axis whose labels are materialized eagerly. Wider axes (a
/// 2^27-value schedule mask) render labels on demand instead — a sweep
/// touches a vanishing fraction of such an axis, and materializing it
/// would cost more than the sweep.
const DENSE_LABEL_LIMIT: usize = 4096;

/// One axis's label column: either every label pre-rendered, or the axis
/// itself, rendering on demand.
#[derive(Debug)]
enum LabelColumn {
    Dense(Vec<Arc<str>>),
    Lazy(Axis),
}

/// The shared axis-value label table every [`crate::PointEval`] of a
/// sweep references. Small axes pre-render their labels once per run;
/// axes too wide to materialize (see [`crate::Axis::schedule_mask`])
/// render each requested label on demand from the axis definition, so
/// the table's footprint is bounded by the *narrow* axes regardless of
/// how large the space is.
#[derive(Debug)]
pub struct LabelTable {
    columns: Vec<LabelColumn>,
}

impl LabelTable {
    fn build(axes: &[Axis]) -> LabelTable {
        LabelTable {
            columns: axes
                .iter()
                .map(|a| {
                    if a.len() <= DENSE_LABEL_LIMIT {
                        LabelColumn::Dense((0..a.len()).map(|i| Arc::from(a.label(i))).collect())
                    } else {
                        LabelColumn::Lazy(a.clone())
                    }
                })
                .collect(),
        }
    }

    /// Number of axis columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The label of value `value` on axis `axis`.
    ///
    /// # Panics
    /// Panics when `axis` or `value` is out of range.
    pub fn label(&self, axis: usize, value: usize) -> Arc<str> {
        match &self.columns[axis] {
            LabelColumn::Dense(v) => v[value].clone(),
            LabelColumn::Lazy(a) => Arc::from(a.label(value)),
        }
    }
}

/// A fully-materialized table (every column dense) — the form test
/// helpers build by hand.
impl From<Vec<Vec<Arc<str>>>> for LabelTable {
    fn from(columns: Vec<Vec<Arc<str>>>) -> LabelTable {
        LabelTable {
            columns: columns.into_iter().map(LabelColumn::Dense).collect(),
        }
    }
}

/// Stable identifier of one design point within its [`ParamSpace`]: the
/// row-major rank in the cartesian product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignId(pub u64);

/// One fully-resolved design point: its id, per-axis coordinates and
/// labels, and the scenario chain ready to run.
#[derive(Debug, Clone)]
pub struct DesignPointSpec {
    /// Rank in the space's cartesian product.
    pub id: DesignId,
    /// Per-axis value indices, in axis declaration order.
    pub coords: Vec<usize>,
    /// Per-axis value labels, in axis declaration order.
    pub labels: Vec<String>,
    /// The base scenario with every axis value applied.
    pub scenario: Scenario,
}

/// A typed parameter space: a base [`Scenario`] refined by a list of
/// [`Axis`] values, enumerating `∏ axis.len()` design points.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    base: Scenario,
    axes: Vec<Axis>,
}

impl ParamSpace {
    /// A space containing exactly the base scenario (no axes yet).
    pub fn new(base: Scenario) -> ParamSpace {
        ParamSpace {
            base,
            axes: Vec::new(),
        }
    }

    /// Add an axis (builder style). Axes apply to the base scenario in
    /// declaration order; the first axis is the id's most significant
    /// digit.
    ///
    /// # Panics
    /// Panics on an empty axis (it would collapse the space to nothing).
    pub fn axis(mut self, axis: Axis) -> ParamSpace {
        assert!(!axis.is_empty(), "axis {:?} has no values", axis.name());
        self.axes.push(axis);
        self
    }

    /// The base scenario the axes refine.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// The declared axes, in order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The axis names, in order (report column headers).
    pub fn axis_names(&self) -> Vec<&'static str> {
        self.axes.iter().map(Axis::name).collect()
    }

    /// The shared axis-value label table (`table.label(axis, value)`)
    /// every [`crate::PointEval`] of a sweep references — one allocation
    /// per run instead of one label vector per point.
    pub fn label_table(&self) -> Arc<LabelTable> {
        Arc::new(LabelTable::build(&self.axes))
    }

    /// Number of design points in the cartesian product.
    pub fn len(&self) -> u64 {
        self.axes.iter().map(|a| a.len() as u64).product()
    }

    /// Whether the space is empty (never: axes are non-empty and an
    /// axis-free space still holds the base point).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode an id into per-axis coordinates (`None` when out of range).
    pub fn coords(&self, id: DesignId) -> Option<Vec<usize>> {
        if id.0 >= self.len() {
            return None;
        }
        let mut rank = id.0;
        let mut coords = vec![0usize; self.axes.len()];
        for (slot, axis) in coords.iter_mut().zip(&self.axes).rev() {
            let n = axis.len() as u64;
            *slot = (rank % n) as usize;
            rank /= n;
        }
        Some(coords)
    }

    /// Resolve an id into a fully-applied design point (`None` when out
    /// of range).
    pub fn point(&self, id: DesignId) -> Option<DesignPointSpec> {
        let coords = self.coords(id)?;
        let mut scenario = self.base.clone();
        let mut labels = Vec::with_capacity(self.axes.len());
        for (axis, &i) in self.axes.iter().zip(&coords) {
            labels.push(axis.label(i));
            scenario = axis.apply(i, scenario);
        }
        Some(DesignPointSpec {
            id,
            coords,
            labels,
            scenario,
        })
    }

    /// Iterate the full cartesian product in id order.
    pub fn iter(&self) -> impl Iterator<Item = DesignPointSpec> + '_ {
        (0..self.len()).map(|r| self.point(DesignId(r)).expect("rank in range"))
    }

    /// Encode per-axis coordinates back into the point's [`DesignId`] —
    /// the inverse of [`ParamSpace::coords`]. `None` when the arity is
    /// wrong or any coordinate is out of its axis's range.
    pub fn id_of(&self, coords: &[usize]) -> Option<DesignId> {
        if coords.len() != self.axes.len() {
            return None;
        }
        let mut rank = 0u64;
        for (axis, &c) in self.axes.iter().zip(coords) {
            if c >= axis.len() {
                return None;
            }
            rank = rank * axis.len() as u64 + c as u64;
        }
        Some(DesignId(rank))
    }

    /// Draw `count` *distinct* design ids uniformly at random (without
    /// replacement — duplicates would waste backend queries), seeded and
    /// therefore reproducible. Uses Floyd's algorithm, so the cost is
    /// `O(count)` even when the space is astronomically larger than the
    /// sample. `count` is clamped to the space size; ids come back
    /// sorted ascending (the engines' canonical fold order).
    pub fn sample_ids(&self, count: usize, seed: u64) -> Vec<DesignId> {
        let total = self.len();
        let count = (count as u64).min(total);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut chosen: HashSet<u64> = HashSet::with_capacity(count as usize);
        // Floyd: for j in total-count..total, draw r in [0, j]; take r
        // unless already taken, else take j. Every count-subset is
        // equally likely, and only `count` draws are made.
        for j in (total - count)..total {
            let r = rng.gen_range(0..=j);
            if !chosen.insert(r) {
                chosen.insert(j);
            }
        }
        let mut ids: Vec<DesignId> = chosen.into_iter().map(DesignId).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::WorkloadSel;
    use mpipu::Zoo;

    fn space() -> ParamSpace {
        ParamSpace::new(Scenario::small_tile().sample_steps(16))
            .axis(Axis::w(vec![12, 16, 20]))
            .axis(Axis::cluster(vec![1, 4]))
    }

    #[test]
    fn len_is_the_axis_product_and_axisless_space_is_one_point() {
        assert_eq!(space().len(), 6);
        let solo = ParamSpace::new(Scenario::small_tile());
        assert_eq!(solo.len(), 1);
        let p = solo.point(DesignId(0)).unwrap();
        assert!(p.coords.is_empty() && p.labels.is_empty());
        assert!(solo.point(DesignId(1)).is_none());
    }

    #[test]
    fn coords_decode_row_major() {
        let s = space();
        // id = w_index * 2 + cluster_index.
        assert_eq!(s.coords(DesignId(0)).unwrap(), vec![0, 0]);
        assert_eq!(s.coords(DesignId(1)).unwrap(), vec![0, 1]);
        assert_eq!(s.coords(DesignId(2)).unwrap(), vec![1, 0]);
        assert_eq!(s.coords(DesignId(5)).unwrap(), vec![2, 1]);
        assert_eq!(s.coords(DesignId(6)), None);
    }

    #[test]
    fn points_apply_axes_in_order() {
        let s = space();
        let p = s.point(DesignId(3)).unwrap(); // w=16, cluster=4
        assert_eq!(p.labels, vec!["16".to_string(), "4".to_string()]);
        assert_eq!(p.scenario.design().w, 16);
        assert_eq!(p.scenario.design().tile.cluster_size, 4);
    }

    #[test]
    fn iter_visits_every_point_once_in_id_order() {
        let s = space();
        let ids: Vec<u64> = s.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn sampling_is_seeded_distinct_and_in_range() {
        let s = ParamSpace::new(Scenario::small_tile())
            .axis(Axis::w_grid(8, 38, 1))
            .axis(Axis::cluster(vec![1, 2, 4, 8]))
            .axis(Axis::workload(vec![WorkloadSel::Zoo(Zoo::ResNet18)]));
        let a = s.sample_ids(32, 7);
        let b = s.sample_ids(32, 7);
        assert_eq!(a, b, "same seed, same draw");
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|id| id.0 < s.len()));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        let c = s.sample_ids(32, 8);
        assert_ne!(a, c, "different seed, different draw");
    }

    #[test]
    fn oversampling_clamps_to_the_whole_space_in_id_order() {
        let s = space(); // 6 points
        let all = s.sample_ids(100, 3);
        assert_eq!(all, (0..6).map(DesignId).collect::<Vec<_>>());
        assert!(s.sample_ids(0, 3).is_empty());
    }

    #[test]
    fn id_of_inverts_coords() {
        let s = space();
        for id in 0..s.len() {
            let coords = s.coords(DesignId(id)).unwrap();
            assert_eq!(s.id_of(&coords), Some(DesignId(id)));
        }
        assert_eq!(s.id_of(&[0]), None, "wrong arity");
        assert_eq!(s.id_of(&[0, 2]), None, "coordinate out of range");
    }

    #[test]
    fn wide_axes_render_labels_lazily_and_match_dense_rendering() {
        let s = ParamSpace::new(Scenario::small_tile().synthetic(16, 7, 12))
            .axis(Axis::w(vec![12, 16]))
            .axis(Axis::schedule_mask(13)); // 8192 values > dense limit
        let table = s.label_table();
        assert_eq!(table.width(), 2);
        assert_eq!(&*table.label(0, 1), "16");
        assert_eq!(&*table.label(1, 0x1a2b), s.axes()[1].label(0x1a2b));
    }

    #[test]
    #[should_panic(expected = "has no values")]
    fn empty_axis_is_rejected() {
        ParamSpace::new(Scenario::small_tile()).axis(Axis::w(vec![]));
    }
}
