//! Guided design-space search: successive halving over surrogate- and
//! neighborhood-proposed candidate cohorts, with an active-learning
//! escalation loop — the layer that recovers a Pareto frontier from
//! spaces far too large to enumerate (a 27-layer precision-schedule
//! axis alone is 2^27 ≈ 1.3·10⁸ points).
//!
//! ## Shape
//!
//! A [`SearchEngine`] runs rungs. Each rung asks its [`Searcher`]s to
//! propose a candidate cohort (uniform exploration, frontier-neighbor
//! expansion, and a k-NN surrogate ranking a seeded pool — all
//! hand-rolled, no dependencies), prices the cohort through
//! [`SweepEngine::run_ids_fast`] (the slab `estimate_batch` path on
//! slab-eligible spaces), folds every evaluation into one running
//! [`ParetoFold`], and then prunes: survivors are the top
//! `keep_fraction` of the pool by domination count — the
//! successive-halving step that keeps later, narrower rungs focused on
//! the promising region. After the rungs, frontier survivors are
//! optionally *escalated* to a confirmation backend (Monte-Carlo via
//! the same `CostBackend` seam) and each confirmation reports its
//! analytic-vs-confirmed delta.
//!
//! ## Determinism
//!
//! Byte-determinism at any thread count follows the `SweepEngine`
//! discipline: every proposal stream is seeded (rung- and
//! searcher-indexed), cohorts are deduplicated and folded in ascending
//! [`DesignId`] order, pruning ranks break ties by id, and the k-NN
//! surrogate orders neighbors by `(distance bits, insertion index)`.
//! No step consults wall-clock, thread identity, or map iteration
//! order.
//!
//! ## Degradation
//!
//! With pruning disabled (one rung, `keep_fraction` 1.0, an initial
//! cohort at least the space size) the uniform proposer emits every id
//! ascending and the searcher is *bit-identical* to the exhaustive
//! [`ParetoFold`] sweep — property-tested, so guidance can never
//! silently diverge from enumeration.

use crate::axis::Axis;
use crate::engine::{Collect, Fold, SweepEngine};
use crate::events::SweepSink;
use crate::objective::Objective;
use crate::pareto::{dominates, FrontierPoint, ParetoFold};
use crate::space::{DesignId, ParamSpace};
use mpipu_sim::CostBackend;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Widest breadth-first ball the polish phase expands around the
/// frontier before declaring a fixpoint final. Radius resets to 1
/// whenever a round improves the frontier, so wide balls are only paid
/// for when ring-1 has genuinely dried up.
const POLISH_MAX_RADIUS: usize = 3;

/// Mixes a rung and stream index into a base seed (splitmix-style odd
/// constants — stable across runs, distinct across streams).
fn stream_seed(seed: u64, rung: usize, stream: u64) -> u64 {
    seed ^ (rung as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ stream.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

/// Visit every single-move neighbor of `coords` — ±1 per ordinary
/// axis, every single-bit flip on a [`Axis::ScheduleMask`] — in
/// canonical (axis, lower-side-first) order.
fn ring1(space: &ParamSpace, coords: &[usize], mut visit: impl FnMut(DesignId)) {
    let mut scratch = coords.to_vec();
    for (a, axis) in space.axes().iter().enumerate() {
        let c = coords[a];
        let steps: Vec<usize> = match axis {
            Axis::ScheduleMask { layers } => (0..*layers).map(|l| c ^ (1usize << l)).collect(),
            _ => (c > 0)
                .then(|| c - 1)
                .into_iter()
                .chain((c + 1 < axis.len()).then_some(c + 1))
                .collect(),
        };
        for next in steps {
            scratch[a] = next;
            if let Some(id) = space.id_of(&scratch) {
                visit(id);
            }
        }
        scratch[a] = c;
    }
}

/// Byte-exact frontier signature: `(id, value bits)` per point.
fn signature(front: &[FrontierPoint]) -> Vec<(u64, Vec<u64>)> {
    front
        .iter()
        .map(|p| (p.id.0, p.values.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

/// One pruning survivor: an evaluated point the next rung's proposers
/// may expand around.
#[derive(Debug, Clone)]
pub struct Survivor {
    /// The design's id.
    pub id: DesignId,
    /// Decoded per-axis coordinates.
    pub coords: Vec<usize>,
    /// Objective values in keyed (smaller-is-better) form.
    pub keyed: Vec<f64>,
}

/// What a [`Searcher`] sees when proposing a rung's candidates.
#[derive(Debug)]
pub struct SearchState<'a> {
    /// Zero-based rung index.
    pub rung: usize,
    /// The running Pareto frontier, in canonical id order.
    pub frontier: &'a [FrontierPoint],
    /// The frontier's objective vectors re-keyed to smaller-is-better
    /// form (parallel to `frontier`; bit-exact — see
    /// [`Objective::key_of`]).
    pub frontier_keyed: &'a [Vec<f64>],
    /// The previous rung's pruning survivors, best first.
    pub survivors: &'a [Survivor],
    /// Ids already evaluated (the engine filters proposals against this
    /// set anyway; exposed so proposers can avoid wasting their budget).
    pub visited: &'a HashSet<u64>,
}

/// A candidate-proposal strategy. Implementations must be deterministic
/// functions of `(space, state, budget)` plus their own seeded state —
/// the engine's byte-determinism contract rests on it.
pub trait Searcher {
    /// Short stable name (for rung diagnostics).
    fn name(&self) -> &'static str;

    /// Propose up to `budget` candidate ids for this rung, best first.
    /// Duplicates and already-visited ids are filtered by the engine.
    fn propose(
        &mut self,
        space: &ParamSpace,
        state: &SearchState<'_>,
        budget: usize,
    ) -> Vec<DesignId>;

    /// Observe a rung's evaluated survivors-to-be (the incremental
    /// refit hook; default: ignore).
    fn observe(&mut self, space: &ParamSpace, evals: &[Survivor]) {
        let _ = (space, evals);
    }

    /// Cohort slots this searcher claims per round-robin pass (its
    /// budget share relative to the other searchers; default 1).
    fn weight(&self) -> usize {
        1
    }
}

/// Seeded uniform exploration: `budget` distinct ids per rung via
/// [`ParamSpace::sample_ids`] (Floyd sampling — `O(budget)` no matter
/// how large the space). With the whole space as budget it degenerates
/// to exhaustive ascending enumeration, which is what the degradation
/// proptest pins.
#[derive(Debug)]
pub struct UniformSearcher {
    seed: u64,
}

impl UniformSearcher {
    /// A uniform proposer drawing from `seed`'s stream.
    pub fn new(seed: u64) -> UniformSearcher {
        UniformSearcher { seed }
    }
}

impl Searcher for UniformSearcher {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        state: &SearchState<'_>,
        budget: usize,
    ) -> Vec<DesignId> {
        space.sample_ids(budget, stream_seed(self.seed, state.rung, 1))
    }
}

/// Frontier-neighbor expansion: single-coordinate moves around every
/// survivor, breadth first — all ±1 moves across all survivors and
/// axes, then ±2, ±3, … out to the whole coordinate line
/// (Pareto-optimal grid points cluster along coordinate lines, but
/// with gaps wider than ±1). A [`Axis::ScheduleMask`] coordinate
/// contributes its single-bit flips at distance 1. Deterministic:
/// distance, then survivor rank, then axis declaration order, then the
/// lower side.
#[derive(Debug, Default)]
pub struct NeighborSearcher;

impl NeighborSearcher {
    /// A neighbor proposer.
    pub fn new() -> NeighborSearcher {
        NeighborSearcher
    }
}

impl Searcher for NeighborSearcher {
    fn name(&self) -> &'static str {
        "neighbor"
    }

    // Frontier expansion is the workhorse once a frontier exists — give
    // it the largest cohort share.
    fn weight(&self) -> usize {
        4
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        state: &SearchState<'_>,
        budget: usize,
    ) -> Vec<DesignId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut coords = Vec::new();
        let ring = space.axes().iter().map(Axis::len).max().unwrap_or(1);
        'outer: for d in 1..ring.max(2) {
            for s in state.survivors {
                for (a, axis) in space.axes().iter().enumerate() {
                    let c = s.coords[a];
                    let steps: Vec<usize> = match axis {
                        Axis::ScheduleMask { layers } if d == 1 => {
                            (0..*layers).map(|l| c ^ (1usize << l)).collect()
                        }
                        Axis::ScheduleMask { .. } => Vec::new(),
                        _ => (c >= d)
                            .then(|| c - d)
                            .into_iter()
                            .chain((c + d < axis.len()).then_some(c + d))
                            .collect(),
                    };
                    for next in steps {
                        coords.clear();
                        coords.extend_from_slice(&s.coords);
                        coords[a] = next;
                        let Some(id) = space.id_of(&coords) else {
                            continue;
                        };
                        if !state.visited.contains(&id.0) && seen.insert(id.0) {
                            out.push(id);
                            if out.len() >= budget {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Trust-region exploitation: the current frontier's axis-aligned
/// coordinate bounding box is where undiscovered Pareto points
/// overwhelmingly live (optimal grid designs share most coordinates).
/// Small boxes are enumerated exhaustively in ascending id order;
/// large ones are sampled with a seeded per-axis stream.
#[derive(Debug)]
pub struct BoxSearcher {
    seed: u64,
}

impl BoxSearcher {
    /// A box proposer drawing from `seed`'s stream.
    pub fn new(seed: u64) -> BoxSearcher {
        BoxSearcher { seed }
    }
}

impl Searcher for BoxSearcher {
    fn name(&self) -> &'static str {
        "box"
    }

    fn weight(&self) -> usize {
        2
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        state: &SearchState<'_>,
        budget: usize,
    ) -> Vec<DesignId> {
        if state.frontier.is_empty() || budget == 0 {
            return Vec::new();
        }
        let n = space.axes().len();
        let mut lo = vec![usize::MAX; n];
        let mut hi = vec![0usize; n];
        for p in state.frontier {
            let coords = space.coords(p.id).expect("frontier id in range");
            for (a, &c) in coords.iter().enumerate() {
                lo[a] = lo[a].min(c);
                hi[a] = hi[a].max(c);
            }
        }
        let volume: u128 = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| (h - l + 1) as u128)
            .product();

        let mut out = Vec::new();
        if volume <= budget.saturating_mul(4) as u128 {
            // Enumerate the whole box; row-major coordinate order is
            // ascending id order.
            let mut coords = lo.clone();
            loop {
                if let Some(id) = space.id_of(&coords) {
                    if !state.visited.contains(&id.0) {
                        out.push(id);
                        if out.len() >= budget {
                            break;
                        }
                    }
                }
                // Odometer step within [lo, hi].
                let mut a = n;
                loop {
                    if a == 0 {
                        return out;
                    }
                    a -= 1;
                    if coords[a] < hi[a] {
                        coords[a] += 1;
                        break;
                    }
                    coords[a] = lo[a];
                }
            }
        } else {
            let mut rng = SmallRng::seed_from_u64(stream_seed(self.seed, state.rung, 3));
            let mut seen = HashSet::new();
            let mut coords = vec![0usize; n];
            for _ in 0..budget.saturating_mul(8) {
                for (a, c) in coords.iter_mut().enumerate() {
                    *c = rng.gen_range(lo[a]..=hi[a]);
                }
                let Some(id) = space.id_of(&coords) else {
                    continue;
                };
                if !state.visited.contains(&id.0) && seen.insert(id.0) {
                    out.push(id);
                    if out.len() >= budget {
                        break;
                    }
                }
            }
        }
        out
    }
}

/// A k-nearest-neighbor surrogate over decoded, axis-normalized
/// coordinates: every evaluated point is a training sample; a proposal
/// round scores a seeded candidate pool by the surrogate's predicted
/// keyed objectives — first by how many current frontier points
/// dominate the prediction, then by predicted keyed sum — and keeps the
/// best. Refit is incremental (a `Vec` push per observation); no
/// matrices, no dependencies.
#[derive(Debug)]
pub struct SurrogateSearcher {
    seed: u64,
    k: usize,
    /// Candidate-pool oversampling factor relative to the budget.
    pool_factor: usize,
    /// `(normalized coords, keyed objectives)` per observed point.
    history: Vec<(Vec<f64>, Vec<f64>)>,
}

impl SurrogateSearcher {
    /// A surrogate proposer with `k` neighbors drawing its candidate
    /// pools from `seed`'s stream.
    pub fn new(seed: u64, k: usize) -> SurrogateSearcher {
        SurrogateSearcher {
            seed,
            k: k.max(1),
            pool_factor: 8,
            history: Vec::new(),
        }
    }

    fn normalize(space: &ParamSpace, coords: &[usize]) -> Vec<f64> {
        coords
            .iter()
            .zip(space.axes())
            .map(|(&c, a)| match a {
                // Treat a schedule mask by FP16-layer count, not by the
                // meaningless integer value of the bit pattern.
                Axis::ScheduleMask { layers } => c.count_ones() as f64 / f64::from(*layers),
                _ => {
                    let n = a.len();
                    if n <= 1 {
                        0.0
                    } else {
                        c as f64 / (n - 1) as f64
                    }
                }
            })
            .collect()
    }

    /// Inverse-distance-weighted k-NN prediction of the keyed objective
    /// vector at `x`. Deterministic: neighbors rank by `(distance,
    /// insertion index)`.
    fn predict(&self, x: &[f64]) -> Vec<f64> {
        let mut near: Vec<(f64, usize)> = self
            .history
            .iter()
            .enumerate()
            .map(|(i, (c, _))| {
                let d2: f64 = c.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, i)
            })
            .collect();
        near.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        near.truncate(self.k);
        let dim = self.history[near[0].1].1.len();
        let mut acc = vec![0.0f64; dim];
        let mut wsum = 0.0f64;
        for &(d2, i) in &near {
            let w = 1.0 / (d2 + 1e-9);
            wsum += w;
            for (slot, v) in acc.iter_mut().zip(&self.history[i].1) {
                *slot += w * v;
            }
        }
        for slot in &mut acc {
            *slot /= wsum;
        }
        acc
    }
}

impl Searcher for SurrogateSearcher {
    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        state: &SearchState<'_>,
        budget: usize,
    ) -> Vec<DesignId> {
        if self.history.is_empty() || state.frontier.is_empty() {
            return Vec::new(); // nothing learned yet — rung 0 is uniform's
        }
        let pool = space.sample_ids(
            budget.saturating_mul(self.pool_factor),
            stream_seed(self.seed, state.rung, 2),
        );
        let mut scored: Vec<(usize, f64, DesignId)> = pool
            .into_iter()
            .filter(|id| !state.visited.contains(&id.0))
            .map(|id| {
                let coords = space.coords(id).expect("sampled id in range");
                let pred = self.predict(&Self::normalize(space, &coords));
                let dominated = state
                    .frontier_keyed
                    .iter()
                    .filter(|k| dominates(k, &pred))
                    .count();
                let sum: f64 = pred.iter().sum();
                (dominated, sum, id)
            })
            .collect();
        scored.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        scored.truncate(budget);
        scored.into_iter().map(|(_, _, id)| id).collect()
    }

    fn observe(&mut self, space: &ParamSpace, evals: &[Survivor]) {
        for s in evals {
            self.history
                .push((Self::normalize(space, &s.coords), s.keyed.clone()));
        }
    }
}

/// Per-rung accounting, reported in [`SearchOutcome::rungs`].
#[derive(Debug, Clone, PartialEq)]
pub struct RungStats {
    /// Zero-based rung index.
    pub rung: usize,
    /// Raw proposals across all searchers (before dedup/visited
    /// filtering).
    pub proposed: u64,
    /// Cohort size actually evaluated.
    pub evaluated: u64,
    /// Frontier size after folding the rung.
    pub frontier: usize,
    /// Survivor-pool size after pruning.
    pub survivors: usize,
}

/// One frontier point's escalation to the confirmation backend.
#[derive(Debug, Clone, PartialEq)]
pub struct Confirmation {
    /// The design's id.
    pub id: DesignId,
    /// Objective values from the search (analytic) evaluation,
    /// original sense.
    pub analytic: Vec<f64>,
    /// Objective values re-evaluated on the confirmation backend.
    pub confirmed: Vec<f64>,
    /// Largest relative disagreement across the objectives.
    pub max_rel_delta: f64,
}

/// Everything a guided search produces.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The recovered Pareto frontier, canonical id order.
    pub frontier: Vec<FrontierPoint>,
    /// Distinct design points evaluated (excluding confirmations).
    pub evaluated: u64,
    /// Raw proposals across all rungs and searchers.
    pub proposed: u64,
    /// Per-rung accounting.
    pub rungs: Vec<RungStats>,
    /// Polish rounds run after the rungs (ring-1 fixpoint iterations).
    pub polish_rounds: usize,
    /// Points evaluated by the polish phase (included in `evaluated`).
    pub polish_evaluated: u64,
    /// Escalation results (empty when no confirmation backend is set).
    pub confirmations: Vec<Confirmation>,
}

/// Guided-search tuning knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Objectives the frontier is ranked by.
    pub objectives: Vec<Objective>,
    /// Rung-0 cohort size.
    pub initial: usize,
    /// Maximum number of rungs.
    pub rungs: usize,
    /// Fraction of the survivor pool kept per rung (1.0 disables
    /// pruning).
    pub keep_fraction: f64,
    /// Hard ceiling on evaluated points across all rungs.
    pub max_evals: u64,
    /// Seed for every proposal stream.
    pub seed: u64,
    /// Stop after this many consecutive rungs with a byte-identical
    /// frontier (0 disables early stopping).
    pub stable_rungs: usize,
}

impl SearchConfig {
    /// Defaults: 256-point initial cohort, 6 rungs, keep 0.5, budget
    /// 4·initial, early-stop after 2 stable rungs.
    ///
    /// # Panics
    /// Panics on an empty objective list.
    pub fn new(objectives: Vec<Objective>) -> SearchConfig {
        assert!(!objectives.is_empty(), "search needs objectives");
        SearchConfig {
            objectives,
            initial: 256,
            rungs: 6,
            keep_fraction: 0.5,
            max_evals: 1024,
            seed: 0xC0FFEE,
            stable_rungs: 2,
        }
    }
}

/// The guided search driver: rungs of propose → price → fold → prune,
/// then escalation. See the module docs for the determinism argument.
pub struct SearchEngine {
    config: SearchConfig,
    engine: SweepEngine,
    confirm: Option<Arc<dyn CostBackend>>,
    searchers: Vec<Box<dyn Searcher>>,
}

impl SearchEngine {
    /// A search with the default searcher stack (uniform + neighbor +
    /// frontier bounding box + k-NN surrogate, k = 8) over a
    /// single-threaded [`SweepEngine`].
    pub fn new(config: SearchConfig) -> SearchEngine {
        let seed = config.seed;
        SearchEngine {
            config,
            engine: SweepEngine::new(),
            confirm: None,
            searchers: vec![
                Box::new(UniformSearcher::new(seed)),
                Box::new(NeighborSearcher::new()),
                Box::new(BoxSearcher::new(seed)),
                Box::new(SurrogateSearcher::new(seed, 8)),
            ],
        }
    }

    /// Drive rung evaluations through this [`SweepEngine`] (thread
    /// count, chunking, shared cost backend).
    pub fn engine(mut self, engine: SweepEngine) -> SearchEngine {
        self.engine = engine;
        self
    }

    /// Escalate frontier survivors to this backend after the rungs (the
    /// analytic → Monte-Carlo active-learning loop).
    pub fn confirm_backend(mut self, backend: Arc<dyn CostBackend>) -> SearchEngine {
        self.confirm = Some(backend);
        self
    }

    /// Replace the searcher stack.
    ///
    /// # Panics
    /// Panics on an empty stack.
    pub fn searchers(mut self, searchers: Vec<Box<dyn Searcher>>) -> SearchEngine {
        assert!(!searchers.is_empty(), "search needs at least one searcher");
        self.searchers = searchers;
        self
    }

    /// Run the search. Sweep events from every rung (and the escalation
    /// pass) stream through `sink`.
    pub fn run(mut self, space: &ParamSpace, sink: &dyn SweepSink) -> SearchOutcome {
        let cfg = &self.config;
        let mut fold = ParetoFold::new(cfg.objectives.clone());
        let mut visited: HashSet<u64> = HashSet::new();
        let mut survivors: Vec<Survivor> = Vec::new();
        let mut frontier: Vec<FrontierPoint> = Vec::new();
        let mut frontier_keyed: Vec<Vec<f64>> = Vec::new();
        let mut rungs: Vec<RungStats> = Vec::new();
        let mut proposed_total = 0u64;
        let mut evaluated = 0u64;
        let mut stable = 0usize;
        let mut prev_front: Vec<(u64, Vec<u64>)> = Vec::new();

        for rung in 0..cfg.rungs {
            let shrink = cfg.keep_fraction.powi(rung as i32);
            let planned = ((cfg.initial as f64 * shrink).ceil() as u64).max(1);
            let remaining = cfg.max_evals.saturating_sub(evaluated);
            let budget = planned.min(remaining) as usize;
            if budget == 0 {
                break;
            }

            // Propose: round-robin across searchers so every strategy
            // gets cohort share, dedup in arrival order, then sort
            // ascending — the canonical fold order.
            let state = SearchState {
                rung,
                frontier: &frontier,
                frontier_keyed: &frontier_keyed,
                survivors: &survivors,
                visited: &visited,
            };
            let proposals: Vec<Vec<DesignId>> = self
                .searchers
                .iter_mut()
                .map(|s| {
                    let p = s.propose(space, &state, budget);
                    proposed_total += p.len() as u64;
                    p
                })
                .collect();
            let mut cohort: Vec<DesignId> = Vec::with_capacity(budget);
            let mut taken: HashSet<u64> = HashSet::with_capacity(budget);
            let mut cursors = vec![0usize; proposals.len()];
            let weights: Vec<usize> = self.searchers.iter().map(|s| s.weight().max(1)).collect();
            'fill: loop {
                let mut progressed = false;
                for ((list, cursor), &weight) in proposals.iter().zip(&mut cursors).zip(&weights) {
                    let mut claimed = 0;
                    while *cursor < list.len() && claimed < weight {
                        let id = list[*cursor];
                        *cursor += 1;
                        if id.0 < space.len() && !visited.contains(&id.0) && taken.insert(id.0) {
                            cohort.push(id);
                            progressed = true;
                            claimed += 1;
                            if cohort.len() >= budget {
                                break 'fill;
                            }
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
            if cohort.is_empty() {
                break; // every proposer is exhausted
            }
            cohort.sort_unstable();

            // Price the whole cohort (slab fast path where eligible)
            // and fold in ascending id order.
            let evals = self
                .engine
                .run_ids_fast(space, &cohort, Collect::new(), sink);
            let mut rung_survivors: Vec<Survivor> = Vec::with_capacity(evals.len());
            for eval in &evals {
                fold.accept_canonical(eval);
                visited.insert(eval.id.0);
                rung_survivors.push(Survivor {
                    id: eval.id,
                    coords: eval.coords.to_vec(),
                    keyed: cfg.objectives.iter().map(|o| o.keyed(eval)).collect(),
                });
            }
            evaluated += evals.len() as u64;
            for s in &mut self.searchers {
                s.observe(space, &rung_survivors);
            }

            // Prune: keep the top fraction of (previous survivors ∪
            // cohort) by domination count, ties by keyed sum then id —
            // the successive-halving step. Survivors come out best
            // first, which is the order the neighbor proposer spends
            // its budget in.
            let mut pool = std::mem::take(&mut survivors);
            pool.append(&mut rung_survivors);
            let mut rank: Vec<(usize, u64, f64)> = pool
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let dom = pool
                        .iter()
                        .filter(|t| dominates(&t.keyed, &s.keyed))
                        .count();
                    (i, dom as u64, s.keyed.iter().sum::<f64>())
                })
                .collect();
            rank.sort_by(|a, b| {
                a.1.cmp(&b.1)
                    .then(a.2.total_cmp(&b.2))
                    .then(pool[a.0].id.cmp(&pool[b.0].id))
            });
            let keep =
                ((pool.len() as f64 * cfg.keep_fraction).ceil() as usize).clamp(1, pool.len());
            let mut slots: Vec<Option<Survivor>> = pool.into_iter().map(Some).collect();
            survivors = rank[..keep]
                .iter()
                .map(|r| slots[r.0].take().expect("unique rank index"))
                .collect();

            frontier = fold.snapshot();
            frontier_keyed = frontier
                .iter()
                .map(|p| {
                    cfg.objectives
                        .iter()
                        .zip(&p.values)
                        .map(|(o, &v)| o.key_of(v))
                        .collect()
                })
                .collect();
            rungs.push(RungStats {
                rung,
                proposed: proposals.iter().map(|p| p.len() as u64).sum(),
                evaluated: evals.len() as u64,
                frontier: frontier.len(),
                survivors: survivors.len(),
            });

            // Early stop on a byte-stable frontier.
            let signature = signature(&frontier);
            if signature == prev_front {
                stable += 1;
                if cfg.stable_rungs > 0 && stable >= cfg.stable_rungs {
                    break;
                }
            } else {
                stable = 0;
                prev_front = signature;
            }
        }

        // Polish: evaluate the complete ring-1 neighborhood of every
        // frontier point, iterating to a fixpoint (or the budget's
        // end). This collapses equal-value tie classes onto their
        // canonical lowest-id representative — the exhaustive fold's
        // tie rule — and absorbs adjacent dominating designs the
        // pruned rungs stepped over.
        let mut polish_rounds = 0usize;
        let mut polish_evaluated = 0u64;
        let mut radius = 1usize;
        loop {
            let remaining = cfg.max_evals.saturating_sub(evaluated);
            if remaining == 0 {
                break;
            }
            let snapshot = fold.snapshot();
            let before = signature(&snapshot);
            // Breadth-first ball of `radius` ring-1 hops around the
            // frontier; only unvisited ids are priced, but expansion
            // passes through visited ones so the ball stays connected.
            let mut ring: Vec<DesignId> = Vec::new();
            let mut expanded: HashSet<u64> = snapshot.iter().map(|p| p.id.0).collect();
            let mut layer: Vec<Vec<usize>> = snapshot
                .iter()
                .map(|p| space.coords(p.id).expect("frontier id in range"))
                .collect();
            for _ in 0..radius {
                let mut next: Vec<Vec<usize>> = Vec::new();
                for coords in &layer {
                    ring1(space, coords, |id| {
                        if expanded.insert(id.0) {
                            if !visited.contains(&id.0) {
                                ring.push(id);
                            }
                            next.push(space.coords(id).expect("ring id in range"));
                        }
                    });
                }
                layer = next;
            }
            if ring.is_empty() {
                if radius < POLISH_MAX_RADIUS {
                    radius += 1;
                    continue;
                }
                break;
            }
            ring.sort_unstable();
            ring.truncate(remaining as usize);
            let evals = self.engine.run_ids_fast(space, &ring, Collect::new(), sink);
            for eval in &evals {
                fold.accept_canonical(eval);
                visited.insert(eval.id.0);
            }
            evaluated += evals.len() as u64;
            polish_evaluated += evals.len() as u64;
            polish_rounds += 1;
            if signature(&fold.snapshot()) == before {
                // A fixpoint at this radius: widen the ball before
                // giving up — equal-value tie walks and off-frontier
                // optima can sit a couple of hops out.
                if radius < POLISH_MAX_RADIUS {
                    radius += 1;
                } else {
                    break;
                }
            } else {
                radius = 1;
            }
        }

        let frontier: Vec<FrontierPoint> = fold.finish();
        let confirmations = match &self.confirm {
            None => Vec::new(),
            Some(backend) => {
                let confirm_ids: Vec<DesignId> = frontier.iter().map(|p| p.id).collect();
                let engine = self.engine.clone().backend(backend.clone());
                let confirmed = engine.run_ids(space, &confirm_ids, Collect::new(), sink);
                frontier
                    .iter()
                    .zip(&confirmed)
                    .map(|(p, c)| {
                        let confirmed: Vec<f64> =
                            cfg.objectives.iter().map(|o| o.value(c)).collect();
                        let max_rel_delta = p
                            .values
                            .iter()
                            .zip(&confirmed)
                            .map(|(a, b)| {
                                let scale = a.abs().max(b.abs()).max(1e-12);
                                (a - b).abs() / scale
                            })
                            .fold(0.0f64, f64::max);
                        Confirmation {
                            id: p.id,
                            analytic: p.values.clone(),
                            confirmed,
                            max_rel_delta,
                        }
                    })
                    .collect()
            }
        };

        SearchOutcome {
            frontier,
            evaluated,
            proposed: proposed_total,
            rungs,
            polish_rounds,
            polish_evaluated,
            confirmations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::grid_u32;
    use crate::events::NullSweepSink;
    use crate::objective::objectives;
    use mpipu::{Backend, Scenario, Zoo};

    fn space() -> ParamSpace {
        ParamSpace::new(
            Scenario::small_tile()
                .workload(Zoo::ResNet18)
                .sample_steps(16)
                .backend(Backend::AnalyticBatched),
        )
        .axis(Axis::w(grid_u32(8, 38, 2)))
        .axis(Axis::cluster(vec![1, 2, 4, 8]))
    }

    fn objectives() -> Vec<Objective> {
        vec![objectives::FP_SLOWDOWN, objectives::INT_TOPS_PER_MM2]
    }

    fn exact_frontier(space: &ParamSpace) -> Vec<FrontierPoint> {
        SweepEngine::new().run(space, ParetoFold::new(objectives()), &NullSweepSink)
    }

    fn assert_bit_identical(a: &[FrontierPoint], b: &[FrontierPoint]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.labels, y.labels);
            let xb: Vec<u64> = x.values.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = y.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "values at id {}", x.id.0);
        }
    }

    #[test]
    fn degenerate_search_is_bit_identical_to_exhaustive_enumeration() {
        let space = space();
        let mut cfg = SearchConfig::new(objectives());
        cfg.rungs = 1;
        cfg.keep_fraction = 1.0;
        cfg.initial = space.len() as usize;
        cfg.max_evals = space.len();
        let out = SearchEngine::new(cfg).run(&space, &NullSweepSink);
        assert_eq!(out.evaluated, space.len());
        assert_bit_identical(&out.frontier, &exact_frontier(&space));
    }

    #[test]
    fn pruned_search_recovers_the_frontier_with_a_fraction_of_the_evals() {
        let space = space();
        let exact = exact_frontier(&space);
        let mut cfg = SearchConfig::new(objectives());
        cfg.initial = 12;
        cfg.rungs = 5;
        cfg.max_evals = space.len() / 2;
        let out = SearchEngine::new(cfg).run(&space, &NullSweepSink);
        assert!(out.evaluated < space.len(), "search must not enumerate");
        assert!(!out.rungs.is_empty() && out.proposed >= out.evaluated);
        // Every guided frontier point carries exact (bit-identical)
        // objective values, so matching ids imply matching points.
        let exact_ids: HashSet<u64> = exact.iter().map(|p| p.id.0).collect();
        let hits = out
            .frontier
            .iter()
            .filter(|p| exact_ids.contains(&p.id.0))
            .count();
        assert!(
            hits * 2 >= exact.len(),
            "recall collapsed: {hits}/{} of the exact frontier",
            exact.len()
        );
    }

    #[test]
    fn search_is_byte_deterministic_across_thread_counts() {
        let space = space();
        let run = |threads: usize| {
            let mut cfg = SearchConfig::new(objectives());
            cfg.initial = 16;
            cfg.max_evals = 128;
            SearchEngine::new(cfg)
                .engine(SweepEngine::new().threads(threads).chunk_size(5))
                .run(&space, &NullSweepSink)
        };
        let (a, b) = (run(1), run(4));
        assert_bit_identical(&a.frontier, &b.frontier);
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.proposed, b.proposed);
        assert_eq!(a.rungs, b.rungs);
    }

    #[test]
    fn escalation_confirms_every_frontier_point_and_reports_deltas() {
        let space = space();
        let mut cfg = SearchConfig::new(objectives());
        cfg.initial = 16;
        cfg.max_evals = 64;
        let out = SearchEngine::new(cfg)
            .confirm_backend(Backend::AnalyticBatched.escalated().instantiate())
            .run(&space, &NullSweepSink);
        assert_eq!(out.confirmations.len(), out.frontier.len());
        for (c, p) in out.confirmations.iter().zip(&out.frontier) {
            assert_eq!(c.id, p.id);
            assert_eq!(c.analytic, p.values);
            assert_eq!(c.confirmed.len(), c.analytic.len());
            assert!(c.max_rel_delta.is_finite() && c.max_rel_delta >= 0.0);
        }
        // MC and analytic genuinely disagree somewhere — the delta
        // column is informative, not identically zero.
        assert!(out.confirmations.iter().any(|c| c.max_rel_delta > 0.0));
    }

    #[test]
    fn stable_frontier_stops_the_rung_loop_early() {
        let space = space();
        let mut cfg = SearchConfig::new(objectives());
        cfg.initial = space.len() as usize; // rung 0 sees everything
        cfg.rungs = 10;
        cfg.max_evals = u64::MAX;
        cfg.stable_rungs = 2;
        let out = SearchEngine::new(cfg).run(&space, &NullSweepSink);
        // Rung 0 exhausts the space; later rungs have nothing fresh to
        // evaluate, so the loop ends long before rung 10.
        assert!(out.rungs.len() < 10, "ran {} rungs", out.rungs.len());
        assert_bit_identical(&out.frontier, &exact_frontier(&space));
    }

    #[test]
    #[should_panic(expected = "search needs objectives")]
    fn empty_objectives_are_rejected() {
        SearchConfig::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "search needs at least one searcher")]
    fn empty_searcher_stack_is_rejected() {
        SearchEngine::new(SearchConfig::new(objectives())).searchers(Vec::new());
    }
}
