//! Streaming sweep progress events.
//!
//! The engine publishes one [`SweepEvent`] per lifecycle transition and
//! per finished chunk, so a million-point sweep is observable while it
//! runs. Consumers implement [`SweepSink`] (or wrap a closure in
//! [`FnSink`]); the experiment suite adapts these to its own run-event
//! stream.
//!
//! Chunk events fire in chunk order (the engine folds chunks through a
//! reorder buffer), so `points_done` is monotone even under concurrency.
//! Backend cache counters are scheduling-dependent and belong only here,
//! never in deterministic result files.

use std::time::Duration;

/// One sweep lifecycle event.
#[derive(Debug, Clone, Copy)]
pub enum SweepEvent<'a> {
    /// The engine accepted a space and is starting its worker pool.
    Started {
        /// Design points to evaluate.
        points: u64,
        /// Chunks the points are split into.
        chunks: usize,
        /// Worker threads evaluating chunks.
        threads: usize,
    },
    /// A chunk was evaluated and folded (fires in chunk order).
    ChunkFinished {
        /// Chunk index (0-based, ascending).
        chunk: usize,
        /// Total chunks.
        chunks: usize,
        /// Points folded so far (monotone).
        points_done: u64,
        /// Total points.
        points: u64,
    },
    /// The shared backend's cache counters after the sweep (only when
    /// the engine's backend memoizes). Counts are scheduling-dependent
    /// under concurrency.
    BackendStats {
        /// The caching backend's name.
        backend: &'a str,
        /// The wrapped backend's name.
        inner: &'a str,
        /// Queries served from the cache.
        hits: u64,
        /// Queries computed by the inner backend.
        misses: u64,
        /// Distinct design points cached.
        entries: usize,
    },
    /// Every point is folded; the pool is joined.
    Finished {
        /// Points evaluated.
        points: u64,
        /// Wall-clock duration of the sweep.
        wall: Duration,
    },
    /// The sweep stopped early — its [`crate::CancelToken`] fired or its
    /// [`crate::ChunkGovernor`] denied a permit. The fold observed only
    /// the contiguous prefix of chunks counted here; partial output must
    /// be treated as incomplete. Emitted *instead of*
    /// [`SweepEvent::Finished`].
    Cancelled {
        /// Points folded before the stop (a contiguous id prefix).
        points_done: u64,
        /// Points the sweep would have evaluated.
        points: u64,
        /// Wall-clock duration until the stop.
        wall: Duration,
    },
}

/// A consumer of sweep events. Implementations must tolerate concurrent
/// calls (chunks finish on worker threads).
pub trait SweepSink: Sync {
    /// Receive one event.
    fn event(&self, event: &SweepEvent<'_>);
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSweepSink;

impl SweepSink for NullSweepSink {
    fn event(&self, _event: &SweepEvent<'_>) {}
}

/// Adapts a closure into a sink — the one-liner bridge into other event
/// systems (the suite wraps `ctx.progress` this way).
pub struct FnSink<F: Fn(&SweepEvent<'_>) + Sync>(pub F);

impl<F: Fn(&SweepEvent<'_>) + Sync> SweepSink for FnSink<F> {
    fn event(&self, event: &SweepEvent<'_>) {
        (self.0)(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn fn_sink_forwards() {
        let seen = Mutex::new(Vec::new());
        let sink = FnSink(|e: &SweepEvent<'_>| {
            if let SweepEvent::ChunkFinished { chunk, .. } = e {
                seen.lock().unwrap().push(*chunk);
            }
        });
        sink.event(&SweepEvent::Started {
            points: 4,
            chunks: 2,
            threads: 1,
        });
        sink.event(&SweepEvent::ChunkFinished {
            chunk: 0,
            chunks: 2,
            points_done: 2,
            points: 4,
        });
        assert_eq!(*seen.lock().unwrap(), vec![0]);
    }
}
