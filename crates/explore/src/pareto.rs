//! Exact Pareto-frontier and top-k folds over sweep evaluations.
//!
//! Dominance is strict: point `a` dominates `b` when `a` is at least as
//! good on every objective and strictly better on one (objectives are
//! compared in keyed, smaller-is-better form — see
//! [`crate::Objective::keyed`]). Points with *exactly equal* objective
//! vectors are collapsed to the first one folded; since the engine folds
//! in [`DesignId`] order, that representative is the lowest-id design,
//! which keeps frontier output canonical and permutation-invariant.

use crate::engine::{Fold, PointEval};
use crate::objective::Objective;
use crate::space::DesignId;

/// One design on the Pareto frontier (or in a top-k selection).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The design's id in the swept space.
    pub id: DesignId,
    /// The design's per-axis labels.
    pub labels: Vec<String>,
    /// Objective values in the fold's objective order, *original* sense
    /// (not keyed).
    pub values: Vec<f64>,
}

/// `a` strictly dominates `b` (both in keyed, minimize form).
pub(crate) fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// The exact Pareto frontier of a point set in keyed (minimize) form:
/// indices of the non-dominated points, in input order, with exact
/// duplicates collapsed to their first occurrence.
///
/// O(n·f) where `f` is the frontier size — fine for the frontiers real
/// sweeps produce; the incremental [`ParetoFold`] has the same core.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    let mut front: Vec<usize> = Vec::new();
    for (i, candidate) in points.iter().enumerate() {
        if front
            .iter()
            .any(|&j| dominates(&points[j], candidate) || points[j] == *candidate)
        {
            continue;
        }
        front.retain(|&j| !dominates(candidate, &points[j]));
        front.push(i);
    }
    front
}

/// Incremental exact Pareto-frontier fold over the given objectives.
#[derive(Debug)]
pub struct ParetoFold {
    objectives: Vec<Objective>,
    /// `(keyed values, frontier point)` for every currently
    /// non-dominated design.
    front: Vec<(Vec<f64>, FrontierPoint)>,
    /// Reused keyed-values buffer — most points are dominated and
    /// rejected, so the per-point vector never hits the heap for them.
    scratch: Vec<f64>,
    seen: u64,
}

impl ParetoFold {
    /// A fold over one or more objectives.
    ///
    /// # Panics
    /// Panics on an empty objective list.
    pub fn new(objectives: Vec<Objective>) -> ParetoFold {
        assert!(!objectives.is_empty(), "pareto fold needs objectives");
        ParetoFold {
            objectives,
            front: Vec::new(),
            scratch: Vec::new(),
            seen: 0,
        }
    }

    /// The objectives this fold ranks by, in column order.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Points folded so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current frontier size — cheap enough to read after every accept,
    /// which is how live consumers (the serve daemon's incremental
    /// Pareto updates) report progress without cloning the frontier.
    pub fn front_len(&self) -> usize {
        self.front.len()
    }

    /// A copy of the current frontier in canonical ([`DesignId`]) order
    /// without consuming the fold — what [`Fold::finish`] would return
    /// right now. The guided search engine reads this between rungs to
    /// steer proposals while the fold keeps accumulating.
    pub fn snapshot(&self) -> Vec<FrontierPoint> {
        let mut out: Vec<FrontierPoint> = self.front.iter().map(|(_, p)| p.clone()).collect();
        out.sort_by_key(|p| p.id);
        out
    }

    /// Fold an already-selected frontier point (a shard-merge step).
    ///
    /// Keyed values are recomputed from the point's stored
    /// original-sense values ([`Objective::key_of`] — bit-exact), then
    /// run through the same duplicate/dominance logic as
    /// [`Fold::accept`]. Absorbing each unit's finished frontier in
    /// canonical (ascending id-range) unit order therefore yields the
    /// exact single-fold frontier: a point dominated inside its unit is
    /// transitively dominated by a survivor of that unit's frontier, and
    /// exact-duplicate collapse still lands on the lowest id because
    /// units are folded in id order. The shard-merge proptests hold this
    /// for every grouping.
    ///
    /// Does not advance [`ParetoFold::seen`] — absorbed points were
    /// counted by the fold that first accepted them.
    pub fn absorb(&mut self, point: &FrontierPoint) {
        assert_eq!(
            point.values.len(),
            self.objectives.len(),
            "absorbed point has wrong objective arity"
        );
        self.scratch.clear();
        self.scratch.extend(
            self.objectives
                .iter()
                .zip(&point.values)
                .map(|(o, &v)| o.key_of(v)),
        );
        let keyed = &self.scratch;
        if self
            .front
            .iter()
            .any(|(k, _)| dominates(k, keyed) || k == keyed)
        {
            return;
        }
        self.front.retain(|(k, _)| !dominates(keyed, k));
        self.front.push((keyed.clone(), point.clone()));
    }
}

impl Fold for ParetoFold {
    /// The frontier, sorted by [`DesignId`] (canonical order).
    type Output = Vec<FrontierPoint>;

    fn accept(&mut self, eval: &PointEval) {
        self.seen += 1;
        self.scratch.clear();
        self.scratch
            .extend(self.objectives.iter().map(|o| o.keyed(eval)));
        let keyed = &self.scratch;
        if self
            .front
            .iter()
            .any(|(k, _)| dominates(k, keyed) || k == keyed)
        {
            return;
        }
        self.front.retain(|(k, _)| !dominates(keyed, k));
        let values = self.objectives.iter().map(|o| o.value(eval)).collect();
        self.front.push((
            keyed.clone(),
            FrontierPoint {
                id: eval.id,
                labels: eval.labels().map(|l| l.to_string()).collect(),
                values,
            },
        ));
    }

    fn finish(self) -> Self::Output {
        let mut out: Vec<FrontierPoint> = self.front.into_iter().map(|(_, p)| p).collect();
        out.sort_by_key(|p| p.id);
        out
    }
}

impl ParetoFold {
    /// Fold a point with arrival-order-independent tie handling: when
    /// the keyed vector exactly equals an incumbent's, the lower
    /// [`DesignId`] wins instead of the first arrival.
    ///
    /// [`Fold::accept`] keeps the first member of an equal-vector tie
    /// class, which collapses ties to the lowest id *only* when points
    /// arrive in ascending id order — true for exhaustive sweeps, false
    /// for guided search, whose evaluation order follows the proposal
    /// schedule. Folding through this entry point instead makes the
    /// representative the least evaluated id of each tie class, so the
    /// search lands on the same canonical frontier the exhaustive fold
    /// produces whenever it evaluates the canonical member at all.
    pub fn accept_canonical(&mut self, eval: &PointEval) {
        self.seen += 1;
        self.scratch.clear();
        self.scratch
            .extend(self.objectives.iter().map(|o| o.keyed(eval)));
        let keyed = &self.scratch;
        if let Some((_, p)) = self.front.iter_mut().find(|(k, _)| k == keyed) {
            if eval.id < p.id {
                *p = FrontierPoint {
                    id: eval.id,
                    labels: eval.labels().map(|l| l.to_string()).collect(),
                    values: self.objectives.iter().map(|o| o.value(eval)).collect(),
                };
            }
            return;
        }
        if self.front.iter().any(|(k, _)| dominates(k, keyed)) {
            return;
        }
        self.front.retain(|(k, _)| !dominates(keyed, k));
        let values = self.objectives.iter().map(|o| o.value(eval)).collect();
        self.front.push((
            keyed.clone(),
            FrontierPoint {
                id: eval.id,
                labels: eval.labels().map(|l| l.to_string()).collect(),
                values,
            },
        ));
    }
}

/// Keeps the `k` best points by one objective (keyed order, ties broken
/// by lowest [`DesignId`] for determinism).
#[derive(Debug)]
pub struct TopK {
    objective: Objective,
    k: usize,
    /// Sorted ascending by `(keyed value, id)`.
    best: Vec<(f64, FrontierPoint)>,
}

impl TopK {
    /// Keep the `k` best designs by `objective`.
    ///
    /// # Panics
    /// Panics when `k` is zero.
    pub fn new(objective: Objective, k: usize) -> TopK {
        assert!(k > 0, "top-k selection needs k >= 1");
        TopK {
            objective,
            k,
            best: Vec::with_capacity(k + 1),
        }
    }

    /// Fold an already-selected top-k point (a shard-merge step).
    ///
    /// The key is recomputed from the point's stored value (bit-exact —
    /// see [`Objective::key_of`]). The final selection is the k smallest
    /// `(keyed, id)` pairs of everything folded, which is
    /// insertion-order independent; the global top-k is a subset of the
    /// union of per-unit top-ks (a globally selected point is at least
    /// as good within its own unit), so absorbing each unit's finished
    /// selection reproduces the single-fold result exactly.
    pub fn absorb(&mut self, point: &FrontierPoint) {
        assert_eq!(
            point.values.len(),
            1,
            "top-k points carry exactly the ranking objective's value"
        );
        let keyed = self.objective.key_of(point.values[0]);
        if self.best.len() == self.k {
            let (worst, worst_point) = self.best.last().expect("k >= 1");
            if keyed > *worst || (keyed == *worst && point.id >= worst_point.id) {
                return;
            }
        }
        let at = self
            .best
            .partition_point(|(v, p)| *v < keyed || (*v == keyed && p.id < point.id));
        self.best.insert(at, (keyed, point.clone()));
        self.best.truncate(self.k);
    }
}

impl Fold for TopK {
    /// Best-first (then lowest-id) selection, length ≤ k.
    type Output = Vec<FrontierPoint>;

    fn accept(&mut self, eval: &PointEval) {
        let keyed = self.objective.keyed(eval);
        if self.best.len() == self.k {
            let (worst, worst_point) = self.best.last().expect("k >= 1");
            if keyed > *worst || (keyed == *worst && eval.id >= worst_point.id) {
                return;
            }
        }
        let point = FrontierPoint {
            id: eval.id,
            labels: eval.labels().map(|l| l.to_string()).collect(),
            values: vec![self.objective.value(eval)],
        };
        let at = self
            .best
            .partition_point(|(v, p)| *v < keyed || (*v == keyed && p.id < point.id));
        self.best.insert(at, (keyed, point));
        self.best.truncate(self.k);
    }

    fn finish(self) -> Self::Output {
        self.best.into_iter().map(|(_, p)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{objectives, Sense};
    use mpipu_hw::DesignMetrics;

    fn eval(id: u64, normalized: f64, tops: f64) -> PointEval {
        use std::sync::Arc;
        PointEval {
            id: DesignId(id),
            coords: vec![id as usize].into(),
            label_table: Arc::new(
                vec![(0..=id)
                    .map(|i| Arc::from(format!("p{i}").as_str()))
                    .collect()]
                .into(),
            ),
            cycles: (normalized * 1000.0) as u64,
            baseline_cycles: 1000,
            normalized,
            fp_fraction: 1.0,
            metrics: DesignMetrics {
                int_tops_per_mm2: tops,
                int_tops_per_w: tops,
                fp_tflops_per_mm2: tops,
                fp_tflops_per_w: tops,
            },
        }
    }

    fn fold_all(points: &[PointEval]) -> Vec<FrontierPoint> {
        let mut fold = ParetoFold::new(vec![objectives::FP_SLOWDOWN, objectives::INT_TOPS_PER_MM2]);
        for p in points {
            fold.accept(p);
        }
        fold.finish()
    }

    #[test]
    fn dominated_points_are_dropped_and_trade_offs_kept() {
        // (slowdown min, tops max): a=(1.0, 10) b=(2.0, 20) trade off;
        // c=(2.5, 15) is dominated by b; d=(1.0, 10) duplicates a.
        let front = fold_all(&[
            eval(0, 1.0, 10.0),
            eval(1, 2.0, 20.0),
            eval(2, 2.5, 15.0),
            eval(3, 1.0, 10.0),
        ]);
        let ids: Vec<u64> = front.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(front[0].values, vec![1.0, 10.0], "original sense kept");
    }

    #[test]
    fn later_better_point_evicts_earlier_ones() {
        let front = fold_all(&[
            eval(0, 2.0, 10.0),
            eval(1, 1.5, 10.0),
            eval(2, 1.0, 10.0), // dominates both
        ]);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].id, DesignId(2));
    }

    #[test]
    fn canonical_accept_collapses_ties_to_the_lowest_id_in_any_order() {
        // Equal-vector twins arriving high-id first: plain accept keeps
        // the first arrival; accept_canonical lands on id 1 regardless
        // of order, matching the exhaustive (ascending-id) fold.
        let points = [eval(7, 1.0, 10.0), eval(1, 1.0, 10.0), eval(4, 1.0, 10.0)];
        let plain = fold_all(&points);
        assert_eq!(plain[0].id, DesignId(7), "plain accept is first-arrival");
        let mut fold = ParetoFold::new(vec![objectives::FP_SLOWDOWN, objectives::INT_TOPS_PER_MM2]);
        for p in &points {
            fold.accept_canonical(p);
        }
        assert_eq!(fold.seen(), 3);
        let front = fold.finish();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].id, DesignId(1), "lowest id wins the tie class");
        // Dominance handling is unchanged: a strictly better point still
        // evicts, a dominated one is still dropped.
        let mut fold = ParetoFold::new(vec![objectives::FP_SLOWDOWN, objectives::INT_TOPS_PER_MM2]);
        fold.accept_canonical(&eval(3, 2.0, 10.0));
        fold.accept_canonical(&eval(5, 1.0, 10.0));
        fold.accept_canonical(&eval(6, 3.0, 5.0));
        let front = fold.finish();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].id, DesignId(5));
    }

    #[test]
    fn pareto_front_helper_minimizes() {
        let pts = vec![
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![2.0, 2.0], // dominated
            vec![1.0, 2.0], // duplicate
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
    }

    #[test]
    fn single_objective_frontier_is_the_min_set() {
        let mut fold = ParetoFold::new(vec![objectives::FP_SLOWDOWN]);
        for p in [eval(0, 1.5, 0.0), eval(1, 1.2, 0.0), eval(2, 1.9, 0.0)] {
            fold.accept(&p);
        }
        let front = fold.finish();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].id, DesignId(1));
    }

    #[test]
    fn top_k_keeps_best_with_deterministic_ties() {
        let mut top = TopK::new(objectives::FP_SLOWDOWN, 2);
        for p in [
            eval(5, 1.3, 0.0),
            eval(1, 1.1, 0.0),
            eval(4, 1.1, 0.0), // ties id 1; higher id loses
            eval(2, 1.2, 0.0),
        ] {
            top.accept(&p);
        }
        let best = top.finish();
        let ids: Vec<u64> = best.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 4]);
        assert_eq!(best[0].values, vec![1.1]);
    }

    #[test]
    fn top_k_maximizing_objective() {
        let mut top = TopK::new(objectives::INT_TOPS_PER_MM2, 2);
        for p in [eval(0, 1.0, 5.0), eval(1, 1.0, 9.0), eval(2, 1.0, 7.0)] {
            top.accept(&p);
        }
        let ids: Vec<u64> = top.finish().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 2], "best first");
    }

    #[test]
    fn custom_objective_senses_compose() {
        const CHEAP: crate::Objective =
            crate::Objective::new("baseline", Sense::Minimize, |e| e.baseline_cycles as f64);
        let mut fold = ParetoFold::new(vec![CHEAP]);
        fold.accept(&eval(0, 1.0, 1.0));
        assert_eq!(fold.seen(), 1);
        assert_eq!(fold.finish().len(), 1);
    }
}
