//! Property tests for the Pareto fold — the frontier is a subset of the
//! input, contains no dominated point, and is invariant under input
//! permutation — and for the sweep engine's slab fast path, which must
//! be bit-identical to scalar point-by-point evaluation over arbitrary
//! parameter spaces and chunk boundaries.

use mpipu_explore::{pareto_front, FrontierPoint, Objective, ParetoFold, PointEval, Sense};
use mpipu_explore::{DesignId, Fold, ParamSpace, ShardMerge, TopK, UnitFold};
use mpipu_hw::DesignMetrics;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `a` strictly dominates `b` under minimization — an independent
/// re-statement of the library's dominance rule.
fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Quantize to a small value lattice so duplicates and exact ties occur
/// often (the interesting cases for canonicalization).
fn lattice(x: f64) -> f64 {
    (x * 4.0).round() / 4.0
}

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..4, prop::collection::vec(0.0f64..4.0, 0..40)).prop_map(|(dim, flat)| {
        flat.chunks_exact(dim)
            .map(|c| c.iter().copied().map(lattice).collect())
            .collect()
    })
}

fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// Run the two objective columns of a point list through [`ParetoFold`]
/// (ids follow input order, so permutations get different ids — which
/// the canonical frontier must not care about).
fn fold_points(points: &[Vec<f64>]) -> Vec<FrontierPoint> {
    const OBJS: [Objective; 3] = [
        Objective::new("o0", Sense::Minimize, |e: &PointEval| {
            e.metrics.int_tops_per_mm2
        }),
        Objective::new("o1", Sense::Minimize, |e: &PointEval| {
            e.metrics.int_tops_per_w
        }),
        Objective::new("o2", Sense::Minimize, |e: &PointEval| {
            e.metrics.fp_tflops_per_mm2
        }),
    ];
    let dim = points.first().map_or(1, Vec::len);
    let mut fold = ParetoFold::new(OBJS[..dim].to_vec());
    for (i, p) in points.iter().enumerate() {
        fold.accept(&make_eval(i, p));
    }
    fold.finish()
}

/// One synthetic evaluation: id follows input order, objective columns
/// land in the metrics fields the test objectives extract.
fn make_eval(i: usize, p: &[f64]) -> PointEval {
    let get = |k: usize| p.get(k).copied().unwrap_or(0.0);
    PointEval {
        id: DesignId(i as u64),
        coords: vec![i].into(),
        label_table: std::sync::Arc::new(
            vec![(0..=i)
                .map(|j| std::sync::Arc::from(format!("{j}").as_str()))
                .collect()]
            .into(),
        ),
        cycles: 1,
        baseline_cycles: 1,
        normalized: 1.0,
        fp_fraction: 1.0,
        metrics: DesignMetrics {
            int_tops_per_mm2: get(0),
            int_tops_per_w: get(1),
            fp_tflops_per_mm2: get(2),
            fp_tflops_per_w: 0.0,
        },
    }
}

/// Mixed-sense objectives for the shard-merge laws: the Maximize column
/// exercises the bit-exact re-keying ([`Objective::key_of`]) absorbed
/// points go through.
const MERGE_OBJS: [Objective; 3] = [
    Objective::new("m0", Sense::Minimize, |e: &PointEval| {
        e.metrics.int_tops_per_mm2
    }),
    Objective::new("m1", Sense::Maximize, |e: &PointEval| {
        e.metrics.int_tops_per_w
    }),
    Objective::new("m2", Sense::Minimize, |e: &PointEval| {
        e.metrics.fp_tflops_per_mm2
    }),
];

/// Byte-exact view of a frontier in its native order: `(id, value
/// bits)` per point.
fn exact(front: &[FrontierPoint]) -> Vec<(u64, Vec<u64>)> {
    front
        .iter()
        .map(|p| (p.id.0, p.values.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

/// Fold every point in id order through one `ParetoFold` + `TopK` — the
/// in-process result sharded runs must reproduce.
fn single_fold(points: &[Vec<f64>], dim: usize, k: usize) -> UnitFold {
    let mut pareto = ParetoFold::new(MERGE_OBJS[..dim].to_vec());
    let mut top = TopK::new(MERGE_OBJS[1], k);
    for (i, p) in points.iter().enumerate() {
        let e = make_eval(i, p);
        pareto.accept(&e);
        top.accept(&e);
    }
    UnitFold {
        front: pareto.finish(),
        top: Some(top.finish()),
    }
}

/// Fold each `unit_size`-point stretch independently (its own fresh
/// folds), returning per-unit finished outputs in canonical order.
fn unit_folds(points: &[Vec<f64>], dim: usize, k: usize, unit_size: usize) -> Vec<UnitFold> {
    points
        .chunks(unit_size.max(1))
        .enumerate()
        .map(|(u, chunk)| {
            let mut pareto = ParetoFold::new(MERGE_OBJS[..dim].to_vec());
            let mut top = TopK::new(MERGE_OBJS[1], k);
            for (j, p) in chunk.iter().enumerate() {
                let e = make_eval(u * unit_size.max(1) + j, p);
                pareto.accept(&e);
                top.accept(&e);
            }
            UnitFold {
                front: pareto.finish(),
                top: Some(top.finish()),
            }
        })
        .collect()
}

/// Canonical view of a frontier: the sorted multiset of value vectors
/// (bit-exact — the lattice keeps values representable).
fn canon(front: &[FrontierPoint]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = front
        .iter()
        .map(|p| p.values.iter().map(|v| v.to_bits()).collect())
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frontier_is_a_subset_with_no_dominated_point(
        points in points_strategy(),
    ) {
        let front = fold_points(&points);
        prop_assert!(front.len() <= points.len());
        for p in &front {
            // Subset: the frontier point's values are the input point's
            // values at its id.
            let original = &points[p.id.0 as usize];
            prop_assert_eq!(&p.values, original);
            // No input point dominates a frontier point.
            for q in &points {
                prop_assert!(
                    !dominates(q, &p.values),
                    "{:?} dominates frontier point {:?}", q, p.values
                );
            }
        }
        // Completeness: every non-dominated distinct value vector is on
        // the frontier.
        let expected = pareto_front(&points);
        prop_assert_eq!(front.len(), expected.len());
    }

    #[test]
    fn frontier_is_permutation_invariant(
        points in points_strategy(),
        seed in proptest::prelude::any::<u64>(),
    ) {
        let base = fold_points(&points);
        let perm = fold_points(&shuffled(&points, seed));
        prop_assert_eq!(canon(&base), canon(&perm));
    }

    #[test]
    fn incremental_fold_matches_batch_helper(
        points in points_strategy(),
    ) {
        let fold_values = canon(&fold_points(&points));
        let mut batch: Vec<Vec<u64>> = pareto_front(&points)
            .into_iter()
            .map(|i| points[i].iter().map(|v| v.to_bits()).collect())
            .collect();
        batch.sort();
        prop_assert_eq!(fold_values, batch);
    }

    /// ISSUE 9 shard-merge law: splitting the id sequence into units of
    /// any size, folding each unit independently, and merging the unit
    /// outputs — offered in arbitrary arrival order — equals the single
    /// in-process fold *exactly* (ids, order, and value bits), for both
    /// the Pareto frontier and the top-k selection.
    #[test]
    fn shard_merge_equals_single_fold_for_any_unit_size(
        points in points_strategy(),
        unit_size in 1usize..9,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let dim = points.first().map_or(1, Vec::len);
        let reference = single_fold(&points, dim, k);
        let units = unit_folds(&points, dim, k, unit_size);
        let mut merge = ShardMerge::new(
            ParetoFold::new(MERGE_OBJS[..dim].to_vec()),
            Some(TopK::new(MERGE_OBJS[1], k)),
        );
        let order = shuffled(&(0..units.len()).collect::<Vec<_>>(), seed);
        for u in order {
            merge.offer(u, units[u].clone());
        }
        prop_assert_eq!(merge.merged(), units.len());
        let (front, top) = merge.finish();
        prop_assert_eq!(exact(&front), exact(&reference.front));
        prop_assert_eq!(
            exact(&top.unwrap()),
            exact(reference.top.as_ref().unwrap())
        );
    }

    /// Merge associativity: grouping consecutive units into super-units,
    /// merging each group with its own `ShardMerge`, then merging the
    /// group results, still equals the single fold — per-unit and
    /// merge-of-merges shardings are interchangeable.
    #[test]
    fn shard_merge_is_associative_across_groupings(
        points in points_strategy(),
        unit_size in 1usize..6,
        group in 1usize..4,
        k in 1usize..5,
    ) {
        let dim = points.first().map_or(1, Vec::len);
        let reference = single_fold(&points, dim, k);
        let units = unit_folds(&points, dim, k, unit_size);
        let groups: Vec<UnitFold> = units
            .chunks(group)
            .map(|chunk| {
                let mut inner = ShardMerge::new(
                    ParetoFold::new(MERGE_OBJS[..dim].to_vec()),
                    Some(TopK::new(MERGE_OBJS[1], k)),
                );
                for (j, u) in chunk.iter().enumerate() {
                    inner.offer(j, u.clone());
                }
                let (front, top) = inner.finish();
                UnitFold { front, top }
            })
            .collect();
        let mut outer = ShardMerge::new(
            ParetoFold::new(MERGE_OBJS[..dim].to_vec()),
            Some(TopK::new(MERGE_OBJS[1], k)),
        );
        for (g, fold) in groups.into_iter().enumerate() {
            outer.offer(g, fold);
        }
        let (front, top) = outer.finish();
        prop_assert_eq!(exact(&front), exact(&reference.front));
        prop_assert_eq!(
            exact(&top.unwrap()),
            exact(reference.top.as_ref().unwrap())
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// ISSUE 7: `SweepEngine::run`'s slab fast path (whole chunks
    /// gathered into one `estimate_batch` call) is bit-identical to the
    /// scalar reference path (`run_ids`, which evaluates point by
    /// point) over arbitrary axis combinations, chunk boundaries,
    /// thread counts, and backends — batched, scalar analytic, memoized,
    /// and the seed-sensitive Monte-Carlo fallback.
    #[test]
    fn slab_sweep_is_bit_identical_to_scalar_reference(
        w_mask in 1usize..32,
        cluster_mask in 1usize..8,
        swp_mask in 1usize..4,
        pass_mask in 1usize..4,
        with_dist_axis in any::<bool>(),
        backend_sel in 0usize..4,
        chunk in 1usize..=7,
        threads in 1usize..=4,
    ) {
        use mpipu::{Backend, Scenario, Zoo};
        use mpipu_analysis::dist::Distribution;
        use mpipu_dnn::zoo::Pass;
        use mpipu_explore::{Axis, Collect, NullSweepSink, ParamSpace, SweepEngine};

        /// The non-empty subset of `all` selected by the mask's bits.
        fn masked<T: Copy>(all: &[T], mask: usize) -> Vec<T> {
            all.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect()
        }

        let ws = masked(&[8u32, 12, 16, 25, 38], w_mask);
        let clusters = masked(&[1usize, 2, 8], cluster_mask);
        let swps = masked(&[16u32, 28], swp_mask);
        let passes = masked(&[Pass::Forward, Pass::Backward], pass_mask);
        let backend = [
            Backend::AnalyticBatched,
            Backend::Analytic,
            Backend::MemoizedAnalytic,
            Backend::MonteCarlo,
        ][backend_sel];
        let mut space = ParamSpace::new(
            Scenario::small_tile()
                .workload(Zoo::ResNet18)
                .sample_steps(8)
                .backend(backend),
        )
        .axis(Axis::w(ws))
        .axis(Axis::cluster(clusters))
        .axis(Axis::software_precision(swps))
        .axis(Axis::pass(passes));
        if with_dist_axis {
            space = space.axis(Axis::distributions(vec![(
                Distribution::Normal { std: 1.0 },
                Distribution::WeightLike,
            )]));
        }

        let engine = SweepEngine::new().threads(threads).chunk_size(chunk);
        let slab = engine.run(&space, Collect::new(), &NullSweepSink);
        let ids: Vec<DesignId> = (0..space.len()).map(DesignId).collect();
        let scalar = engine.run_ids(&space, &ids, Collect::new(), &NullSweepSink);

        prop_assert_eq!(slab.len(), scalar.len());
        for (a, b) in slab.iter().zip(&scalar) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.coords, &b.coords);
            prop_assert_eq!(
                a.labels().collect::<Vec<_>>(),
                b.labels().collect::<Vec<_>>()
            );
            prop_assert_eq!(a.cycles, b.cycles, "id {:?}", a.id);
            prop_assert_eq!(a.baseline_cycles, b.baseline_cycles);
            prop_assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
            prop_assert_eq!(a.fp_fraction.to_bits(), b.fp_fraction.to_bits());
            prop_assert_eq!(
                a.metrics.int_tops_per_mm2.to_bits(),
                b.metrics.int_tops_per_mm2.to_bits()
            );
            prop_assert_eq!(
                a.metrics.int_tops_per_w.to_bits(),
                b.metrics.int_tops_per_w.to_bits()
            );
            prop_assert_eq!(
                a.metrics.fp_tflops_per_mm2.to_bits(),
                b.metrics.fp_tflops_per_mm2.to_bits()
            );
            prop_assert_eq!(
                a.metrics.fp_tflops_per_w.to_bits(),
                b.metrics.fp_tflops_per_w.to_bits()
            );
        }
    }
}

/// The non-empty subset of `all` selected by the mask's bits.
fn masked<T: Copy>(all: &[T], mask: usize) -> Vec<T> {
    all.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &v)| v)
        .collect()
}

/// A small analytic-batched space shaped by two axis masks (guaranteed
/// non-empty; 1–20 points).
fn small_space(w_mask: usize, cluster_mask: usize) -> ParamSpace {
    use mpipu::{Backend, Scenario, Zoo};
    use mpipu_explore::Axis;
    ParamSpace::new(
        Scenario::small_tile()
            .workload(Zoo::ResNet18)
            .sample_steps(8)
            .backend(Backend::AnalyticBatched),
    )
    .axis(Axis::w(masked(&[8u32, 12, 16, 25, 38], w_mask)))
    .axis(Axis::cluster(masked(&[1usize, 2, 4, 8], cluster_mask)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ISSUE 10 satellite: `ParamSpace::sample_ids` draws *without*
    /// replacement — every draw is distinct, in range, ascending, and
    /// seed-reproducible, and oversampling clamps to the whole space.
    #[test]
    fn sampling_is_distinct_in_range_and_seed_stable(
        w_mask in 1usize..32,
        cluster_mask in 1usize..16,
        count in 0usize..40,
        seed in any::<u64>(),
    ) {
        let space = small_space(w_mask, cluster_mask);
        let ids = space.sample_ids(count, seed);
        prop_assert_eq!(ids.len() as u64, (count as u64).min(space.len()));
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "not strictly ascending");
        prop_assert!(ids.iter().all(|id| id.0 < space.len()));
        prop_assert_eq!(&ids, &space.sample_ids(count, seed));
        if count >= space.len() as usize {
            let all: Vec<DesignId> = (0..space.len()).map(DesignId).collect();
            prop_assert_eq!(&ids, &all);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// ISSUE 10: with pruning disabled (one rung, keep-fraction 1.0, an
    /// initial cohort covering the space) the guided search degenerates
    /// to exhaustive enumeration and its frontier is *bit-identical* —
    /// ids, labels, and value bits — to the exhaustive `ParetoFold`
    /// sweep, whatever the seed.
    #[test]
    fn degenerate_guided_search_equals_exhaustive_fold(
        w_mask in 1usize..32,
        cluster_mask in 1usize..16,
        seed in any::<u64>(),
        threads in 1usize..=4,
    ) {
        use mpipu_explore::{
            objectives, NullSweepSink, SearchConfig, SearchEngine, SweepEngine,
        };

        let space = small_space(w_mask, cluster_mask);
        let objs = vec![objectives::FP_SLOWDOWN, objectives::INT_TOPS_PER_MM2];
        let reference = SweepEngine::new()
            .threads(threads)
            .run(&space, ParetoFold::new(objs.clone()), &NullSweepSink);

        let mut cfg = SearchConfig::new(objs);
        cfg.rungs = 1;
        cfg.keep_fraction = 1.0;
        cfg.initial = space.len() as usize;
        cfg.max_evals = space.len();
        cfg.seed = seed;
        let out = SearchEngine::new(cfg)
            .engine(SweepEngine::new().threads(threads).chunk_size(3))
            .run(&space, &NullSweepSink);

        prop_assert_eq!(out.evaluated, space.len());
        prop_assert_eq!(exact(&out.frontier), exact(&reference));
        for (a, b) in out.frontier.iter().zip(&reference) {
            prop_assert_eq!(&a.labels, &b.labels);
        }
    }

    /// ISSUE 10: `run_ids_fast` (the slab path over explicit id lists)
    /// is bit-identical to the scalar reference `run_ids` for arbitrary
    /// id lists — unsorted, duplicated, empty — across chunk sizes and
    /// thread counts.
    #[test]
    fn run_ids_fast_matches_run_ids_on_arbitrary_lists(
        w_mask in 1usize..32,
        cluster_mask in 1usize..16,
        picks in prop::collection::vec(any::<u64>(), 0..30),
        chunk in 1usize..=7,
        threads in 1usize..=4,
    ) {
        use mpipu_explore::{Collect, NullSweepSink, SweepEngine};

        let space = small_space(w_mask, cluster_mask);
        let ids: Vec<DesignId> = picks.iter().map(|p| DesignId(p % space.len())).collect();
        let engine = SweepEngine::new().threads(threads).chunk_size(chunk);
        let fast = engine.run_ids_fast(&space, &ids, Collect::new(), &NullSweepSink);
        let scalar = engine.run_ids(&space, &ids, Collect::new(), &NullSweepSink);

        prop_assert_eq!(fast.len(), scalar.len());
        for (a, b) in fast.iter().zip(&scalar) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.coords, &b.coords);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
            prop_assert_eq!(a.fp_fraction.to_bits(), b.fp_fraction.to_bits());
            prop_assert_eq!(
                a.metrics.int_tops_per_mm2.to_bits(),
                b.metrics.int_tops_per_mm2.to_bits()
            );
            prop_assert_eq!(
                a.metrics.fp_tflops_per_w.to_bits(),
                b.metrics.fp_tflops_per_w.to_bits()
            );
        }
    }
}
