//! Property tests for the Pareto fold: the frontier is a subset of the
//! input, contains no dominated point, and is invariant under input
//! permutation.

use mpipu_explore::{pareto_front, FrontierPoint, Objective, ParetoFold, PointEval, Sense};
use mpipu_explore::{DesignId, Fold};
use mpipu_hw::DesignMetrics;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `a` strictly dominates `b` under minimization — an independent
/// re-statement of the library's dominance rule.
fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Quantize to a small value lattice so duplicates and exact ties occur
/// often (the interesting cases for canonicalization).
fn lattice(x: f64) -> f64 {
    (x * 4.0).round() / 4.0
}

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..4, prop::collection::vec(0.0f64..4.0, 0..40)).prop_map(|(dim, flat)| {
        flat.chunks_exact(dim)
            .map(|c| c.iter().copied().map(lattice).collect())
            .collect()
    })
}

fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// Run the two objective columns of a point list through [`ParetoFold`]
/// (ids follow input order, so permutations get different ids — which
/// the canonical frontier must not care about).
fn fold_points(points: &[Vec<f64>]) -> Vec<FrontierPoint> {
    const OBJS: [Objective; 3] = [
        Objective::new("o0", Sense::Minimize, |e: &PointEval| {
            e.metrics.int_tops_per_mm2
        }),
        Objective::new("o1", Sense::Minimize, |e: &PointEval| {
            e.metrics.int_tops_per_w
        }),
        Objective::new("o2", Sense::Minimize, |e: &PointEval| {
            e.metrics.fp_tflops_per_mm2
        }),
    ];
    let dim = points.first().map_or(1, Vec::len);
    let mut fold = ParetoFold::new(OBJS[..dim].to_vec());
    for (i, p) in points.iter().enumerate() {
        let get = |k: usize| p.get(k).copied().unwrap_or(0.0);
        fold.accept(&PointEval {
            id: DesignId(i as u64),
            coords: vec![i],
            labels: vec![format!("{i}")],
            cycles: 1,
            baseline_cycles: 1,
            normalized: 1.0,
            fp_fraction: 1.0,
            metrics: DesignMetrics {
                int_tops_per_mm2: get(0),
                int_tops_per_w: get(1),
                fp_tflops_per_mm2: get(2),
                fp_tflops_per_w: 0.0,
            },
        });
    }
    fold.finish()
}

/// Canonical view of a frontier: the sorted multiset of value vectors
/// (bit-exact — the lattice keeps values representable).
fn canon(front: &[FrontierPoint]) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = front
        .iter()
        .map(|p| p.values.iter().map(|v| v.to_bits()).collect())
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frontier_is_a_subset_with_no_dominated_point(
        points in points_strategy(),
    ) {
        let front = fold_points(&points);
        prop_assert!(front.len() <= points.len());
        for p in &front {
            // Subset: the frontier point's values are the input point's
            // values at its id.
            let original = &points[p.id.0 as usize];
            prop_assert_eq!(&p.values, original);
            // No input point dominates a frontier point.
            for q in &points {
                prop_assert!(
                    !dominates(q, &p.values),
                    "{:?} dominates frontier point {:?}", q, p.values
                );
            }
        }
        // Completeness: every non-dominated distinct value vector is on
        // the frontier.
        let expected = pareto_front(&points);
        prop_assert_eq!(front.len(), expected.len());
    }

    #[test]
    fn frontier_is_permutation_invariant(
        points in points_strategy(),
        seed in proptest::prelude::any::<u64>(),
    ) {
        let base = fold_points(&points);
        let perm = fold_points(&shuffled(&points, seed));
        prop_assert_eq!(canon(&base), canon(&perm));
    }

    #[test]
    fn incremental_fold_matches_batch_helper(
        points in points_strategy(),
    ) {
        let fold_values = canon(&fold_points(&points));
        let mut batch: Vec<Vec<u64>> = pareto_front(&points)
            .into_iter()
            .map(|i| points[i].iter().map(|v| v.to_bits()).collect())
            .collect();
        batch.sort();
        prop_assert_eq!(fold_values, batch);
    }
}
